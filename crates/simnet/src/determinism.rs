//! Schedule-perturbation race detection.
//!
//! The simulator's determinism contract says a run's results depend only on
//! its configuration and seed. One way that contract silently breaks is an
//! *event-ordering race*: two events scheduled for the same virtual
//! timestamp whose processing order changes the outcome. FIFO tie-breaking
//! hides such races — the order is stable, so results are reproducible, but
//! they encode an accident of scheduling order rather than modelled
//! behaviour, and any refactor that changes scheduling order shifts the
//! numbers.
//!
//! [`World::check_determinism`](crate::World::check_determinism) flushes
//! those races out: it re-runs a scenario several times, each time replacing
//! the FIFO tie-break with a seeded bijective scramble
//! ([`mix64`](crate::rng) of the sequence number), so same-timestamp events
//! pop in a different — but deterministic — permutation per key. Events at
//! distinct timestamps are never reordered. After each run a
//! [`Fingerprint`] (metrics digest, trace digest, final clock, events
//! processed) is taken; any divergence from the unperturbed baseline means
//! the scenario's results depend on tie-break order.
//!
//! A divergence is not always a bug in the scenario: callbacks that draw
//! from the shared [`SimRng`](crate::SimRng) consume the stream in
//! processing order, so reordering ties also reorders their draws. A
//! tie-heavy scenario whose ties draw randomness can legitimately diverge.
//! The APE-CACHE testbed keeps continuous per-link jitter on every link
//! precisely so that message arrivals almost never tie; the detector checks
//! that the residual ties (e.g. same-node timer collisions) are benign.
//!
//! Structural guards shrink that residual class further. Sharded worlds
//! give every node a private RNG stream, so only *same-node* ties can
//! couple draws to dispatch order — and each sharded send draws its loss
//! and jitter from a one-shot stream seeded by the message's *intrinsic
//! key* (a hash of send instant, sender, receiver and repeat index; see
//! [`ShardedWorld`](crate::ShardedWorld)), so even same-node ties cannot
//! couple through send randomness: the draw belongs to the message, not
//! to whichever tied callback ran first. Each directed link additionally
//! serializes its arrivals (`link::LinkSerializer`): a nanosecond-exact
//! collision between two messages on the same `src → dst` pair — the
//! dominant same-node tie source at city scale, since one callback's
//! batched sends share a send instant and a jitter distribution — is
//! bumped to the next free nanosecond, as a serial wire would force
//! anyway. What remains is the measure-zero case of arrivals over
//! *different* links (or an arrival and a timer) landing on one node in
//! the same nanosecond *and* racing through order-sensitive node state;
//! node implementations keep such state canonical (e.g. the AP's
//! gossiped-holder map tie-breaks same-instant summaries on node id, not
//! arrival order).

use std::fmt;

use crate::rng::mix64;

/// FNV-1a, 64-bit. Used for run fingerprints: tiny, allocation-free and
/// stable across platforms (no dependency on `std`'s `Hasher` seeding).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;

    pub fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    pub fn finish(self) -> u64 {
        self.0
    }
}

/// Digest of one completed run: everything observable that the determinism
/// contract covers, compressed to four words.
///
/// Two runs of the same scenario are considered equivalent iff their
/// fingerprints are equal: same metric content (counters, histogram sample
/// multisets, time series), same trace event log, same final clock and same
/// number of events processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fingerprint {
    /// Final virtual clock, in nanoseconds.
    pub clock_ns: u64,
    /// Total events processed by the world across all `run_*` calls.
    pub events: u64,
    /// Digest of the metric registry (see [`Metrics::digest`]
    /// (crate::Metrics::digest)).
    pub metrics: u64,
    /// Digest of the trace event log (see [`TraceSink::digest`]
    /// (crate::TraceSink::digest)); 0 when tracing is disabled.
    pub trace: u64,
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "clock={}ns events={} metrics={:016x} trace={:016x}",
            self.clock_ns, self.events, self.metrics, self.trace
        )
    }
}

/// One perturbed re-run inside a [`DeterminismReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerturbedRun {
    /// The tie-break scramble key the run used.
    pub key: u64,
    /// The fingerprint the run produced.
    pub fingerprint: Fingerprint,
}

/// Result of [`World::check_determinism`](crate::World::check_determinism):
/// the unperturbed baseline plus one fingerprint per perturbation key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeterminismReport {
    /// Fingerprint of the run with FIFO tie-breaking (the production order).
    pub baseline: Fingerprint,
    /// Fingerprints of the perturbed re-runs, in key order.
    pub runs: Vec<PerturbedRun>,
}

impl DeterminismReport {
    /// Whether every perturbed run reproduced the baseline fingerprint.
    pub fn is_deterministic(&self) -> bool {
        self.runs.iter().all(|r| r.fingerprint == self.baseline)
    }

    /// The perturbation keys whose runs diverged from the baseline.
    pub fn divergent_keys(&self) -> Vec<u64> {
        self.runs
            .iter()
            .filter(|r| r.fingerprint != self.baseline)
            .map(|r| r.key)
            .collect()
    }
}

impl fmt::Display for DeterminismReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let divergent = self.divergent_keys();
        if divergent.is_empty() {
            write!(
                f,
                "deterministic across {} tie-break permutations ({})",
                self.runs.len(),
                self.baseline
            )
        } else {
            writeln!(
                f,
                "ORDERING RACE: {}/{} perturbed runs diverged from baseline {}",
                divergent.len(),
                self.runs.len(),
                self.baseline
            )?;
            for run in &self.runs {
                if run.fingerprint != self.baseline {
                    writeln!(f, "  key {:#018x}: {}", run.key, run.fingerprint)?;
                }
            }
            Ok(())
        }
    }
}

/// Derives the `n`-th perturbation key for a detector seeded with `seed`.
/// Key 0 is reserved for "no perturbation" (the baseline) and never
/// produced: the mix output is forced odd.
pub(crate) fn perturbation_key(seed: u64, n: u32) -> u64 {
    mix64(seed ^ (u64::from(n) << 32).wrapping_add(0x9E37_79B9)) | 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        let mut h = Fnv64::new();
        h.write(b"");
        assert_eq!(h.finish(), 0xcbf29ce484222325);
        let mut h = Fnv64::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63dc4c8601ec8c);
        let mut h = Fnv64::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn perturbation_keys_are_distinct_and_nonzero() {
        let keys: Vec<u64> = (0..16).map(|n| perturbation_key(42, n)).collect();
        for (i, k) in keys.iter().enumerate() {
            assert_ne!(*k, 0);
            for other in &keys[i + 1..] {
                assert_ne!(k, other);
            }
        }
        // And stable per (seed, n).
        assert_eq!(perturbation_key(42, 3), perturbation_key(42, 3));
        assert_ne!(perturbation_key(42, 3), perturbation_key(43, 3));
    }

    #[test]
    fn report_accounting() {
        let fp = |m| Fingerprint {
            clock_ns: 1,
            events: 2,
            metrics: m,
            trace: 4,
        };
        let good = DeterminismReport {
            baseline: fp(3),
            runs: vec![
                PerturbedRun {
                    key: 1,
                    fingerprint: fp(3),
                },
                PerturbedRun {
                    key: 5,
                    fingerprint: fp(3),
                },
            ],
        };
        assert!(good.is_deterministic());
        assert!(good.divergent_keys().is_empty());
        assert!(format!("{good}").contains("deterministic across 2"));

        let bad = DeterminismReport {
            baseline: fp(3),
            runs: vec![
                PerturbedRun {
                    key: 1,
                    fingerprint: fp(3),
                },
                PerturbedRun {
                    key: 5,
                    fingerprint: fp(9),
                },
            ],
        };
        assert!(!bad.is_deterministic());
        assert_eq!(bad.divergent_keys(), vec![5]);
        assert!(format!("{bad}").contains("ORDERING RACE"));
    }
}
