//! Sharded deterministic execution: one world partitioned across shards.
//!
//! A [`ShardedWorld`] splits one simulation into shards that each own a
//! subset of the nodes, a private event queue ([`crate::wheel::TimerWheel`]
//! via [`EventQueue`]), per-node RNG streams, and private metrics/trace
//! buffers. Shards advance in lock-step *epochs*: every epoch processes the
//! window `[S, S + L)` where `S` is the earliest pending event anywhere and
//! `L` is the **conservative lookahead** — the minimum propagation delay of
//! any cross-shard link. Cross-shard messages stage in per-shard outboxes
//! and are delivered into the destination queue at the epoch barrier; since
//! a message sent at `t ≥ S` arrives at `t + owd ≥ S + L`, no delivery can
//! land inside a window that has already been processed.
//!
//! # Determinism contract
//!
//! A sharded run is **bitwise identical at any shard count and any thread
//! count**. Three mechanisms make that hold:
//!
//! 1. **Intrinsic canonical tie-break keys.** Every scheduled event's key
//!    is a hash of its *identity in the schedule* — a message is `(send
//!    instant, sender, receiver, repeat)`, a timer `(arm instant, node,
//!    token, repeat)` (see `InstantKeys` in [`crate::world`]) — never of
//!    the callback that created it. The key is therefore independent of
//!    which queue an event was inserted into, when a mailbox drained it,
//!    and which of two same-nanosecond callbacks emitted it: lazily
//!    triggered work (a window roll run by whichever tick reaches the due
//!    instant first) mints identical keys in either tie order. Keys are
//!    distinct with overwhelming probability (64-bit birthday bound). Tie
//!    perturbation scrambles the keys bijectively at push time, exactly
//!    like the plain [`World`](crate::World).
//! 2. **Key-derived send randomness; per-node streams elsewhere.** Each
//!    sharded send draws its loss and jitter from a one-shot stream seeded
//!    by its own intrinsic key, so the draw is a property of the message,
//!    not of how many draws its sender made first — two callbacks tied on
//!    one nanosecond cannot couple through a shared stream in either
//!    dispatch order. Every other draw a node makes (`ctx.rng()`) comes
//!    from its own SplitMix-derived stream seeded by `(world seed, node
//!    id)`, independent of global interleaving.
//! 3. **Node-keyed trace/metric state.** Trace and span ids derive from the
//!    recording node, every trace event is stamped with its dispatch key,
//!    and per-shard buffers are merged by stamp into one canonical stream;
//!    metric registries merge commutatively.
//!
//! Because of (2) and (3), a sharded run's fingerprint is *internally*
//! invariant (same at every shard/thread count) but intentionally not equal
//! to the plain `World`'s fingerprint for the same scenario: the plain
//! world draws all randomness from one global stream and allocates trace
//! ids in dispatch order. The plain path is untouched — byte-for-byte the
//! pre-shard scheduler — and remains the reference the sharded executor is
//! differentially tested against at shard count 1.
//!
//! [`enable_shard_oracle`](ShardedWorld::enable_shard_oracle) turns on
//! online checks of the epoch protocol itself (monotone per-shard dispatch,
//! no mailbox delivery into an already-processed window), and
//! [`override_lookahead`](ShardedWorld::override_lookahead) lets tests
//! claim a larger-than-true lookahead to prove the oracle catches a real
//! interleaving bug.

use crate::determinism::{Fingerprint, Fnv64};
use crate::event::{EventKind, EventQueue};
use crate::fault::FaultPlan;
use crate::link::{LinkSerializer, LinkSpec, Topology};
use crate::metrics::{Metrics, MetricsConfig};
use crate::node::{Message, Node, NodeId};
use crate::profiler::{ProfCategory, ProfileReport, Profiler};
use crate::rng::{mix64, SimRng};
use crate::time::{SimDuration, SimTime};
use crate::trace::{SpanCtx, TraceConfig, TraceEvent, TraceSink};
use crate::world::{Context, InstantKeys, Outbound, RouteRef, RunReport, StopReason};

/// Derives the RNG stream for one node from the world seed. Golden-ratio
/// increments keep the streams well separated under `mix64`.
fn node_stream(seed: u64, raw: u32) -> SimRng {
    let stream = (raw as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    SimRng::seed_from(mix64(seed ^ stream))
}

/// One shard: a slice of the node table with its own queue, RNG streams and
/// observability buffers.
struct Shard<M: Message> {
    queue: EventQueue<M>,
    nodes: Vec<Option<Box<dyn Node<M>>>>,
    /// Local index → global id.
    node_ids: Vec<NodeId>,
    /// Per-node RNG streams (local index).
    rngs: Vec<SimRng>,
    /// World seed, folded into key-derived send randomness.
    seed: u64,
    /// Intrinsic tie-break key allocator (see `InstantKeys`).
    keys: InstantKeys,
    metrics: Metrics,
    trace: TraceSink,
    prof: Profiler,
    /// Per-directed-link arrival serialization. Keyed by `(src, dst)` and a
    /// source node lives on exactly one shard, so per-shard state reserves
    /// identically at any shard count — including for cross-shard sends,
    /// whose arrival time is fixed here at send time before staging.
    links: LinkSerializer,
    /// Cross-shard sends staged during the current epoch.
    outbox: Vec<Outbound<M>>,
    processed: u64,
    /// Shard-oracle state: the `(at, key)` of the last dispatched event.
    last_dispatch: Option<(SimTime, u64)>,
    /// Shard-oracle state: events strictly below this time have been
    /// processed; a mailbox delivery below it is a protocol violation.
    drained_to: SimTime,
}

impl<M: Message> Shard<M> {
    fn new(seed: u64) -> Self {
        let mut trace = TraceSink::default();
        trace.enable_node_ids();
        Shard {
            queue: EventQueue::new(),
            nodes: Vec::new(),
            node_ids: Vec::new(),
            rngs: Vec::new(),
            seed,
            keys: InstantKeys::default(),
            metrics: Metrics::new(),
            trace,
            prof: Profiler::new(),
            links: LinkSerializer::default(),
            outbox: Vec::new(),
            processed: 0,
            last_dispatch: None,
            drained_to: SimTime::ZERO,
        }
    }

    /// Runs `f` against one local node with a fully wired [`Context`].
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &mut self,
        local: usize,
        now: SimTime,
        span: Option<SpanCtx>,
        topology: &Topology,
        faults: &FaultPlan,
        home_shard: &[u32],
        self_shard: u32,
        f: impl FnOnce(&mut dyn Node<M>, &mut Context<'_, M>),
    ) {
        let t = self.prof.start();
        let id = self.node_ids[local];
        let mut node = self.nodes[local]
            .take()
            .unwrap_or_else(|| panic!("re-entrant dispatch on {id}"));
        {
            let mut ctx = Context {
                now,
                self_id: id,
                queue: &mut self.queue,
                topology,
                faults,
                links: &mut self.links,
                rng: &mut self.rngs[local],
                metrics: &mut self.metrics,
                trace: &mut self.trace,
                prof: &mut self.prof,
                span,
                route: Some(RouteRef {
                    self_shard,
                    home: home_shard,
                    seed: self.seed,
                    keys: &mut self.keys,
                    outbox: &mut self.outbox,
                }),
            };
            f(node.as_mut(), &mut ctx);
        }
        self.nodes[local] = Some(node);
        self.prof.record(ProfCategory::Dispatch, t);
    }

    /// Processes every local event with `at < horizon && at <= deadline`.
    /// Returns `(events processed, last event time)`.
    #[allow(clippy::too_many_arguments)]
    fn drain_epoch(
        &mut self,
        horizon: SimTime,
        deadline: SimTime,
        topology: &Topology,
        faults: &FaultPlan,
        home_shard: &[u32],
        home_local: &[u32],
        self_shard: u32,
        oracle: bool,
    ) -> (u64, Option<SimTime>) {
        let mut events = 0u64;
        let mut last_at = None;
        while let Some(at) = self.queue.peek_time() {
            if at >= horizon || at > deadline {
                break;
            }
            let t = self.prof.start();
            let ev = self.queue.pop().expect("peeked event vanished");
            self.prof.record(ProfCategory::QueuePop, t);
            if oracle {
                if let Some(last) = self.last_dispatch {
                    assert!(
                        (ev.at, ev.seq) > last,
                        "shard oracle: dispatch order regressed on shard {self_shard}: \
                         ({:?}, {:#x}) after ({:?}, {:#x})",
                        ev.at,
                        ev.seq,
                        last.0,
                        last.1,
                    );
                }
                self.last_dispatch = Some((ev.at, ev.seq));
            }
            if self.trace.is_enabled() {
                self.trace.set_dispatch_stamp(ev.at, ev.seq);
            }
            events += 1;
            last_at = Some(ev.at);
            match ev.kind {
                EventKind::Deliver {
                    to,
                    from,
                    msg,
                    span,
                } => {
                    debug_assert_eq!(home_shard[to.as_raw() as usize], self_shard);
                    let local = home_local[to.as_raw() as usize] as usize;
                    self.dispatch(
                        local,
                        ev.at,
                        span,
                        topology,
                        faults,
                        home_shard,
                        self_shard,
                        |node, ctx| node.on_message(ctx, from, msg),
                    );
                }
                EventKind::Timer { node, token, span } => {
                    let local = home_local[node.as_raw() as usize] as usize;
                    self.dispatch(
                        local,
                        ev.at,
                        span,
                        topology,
                        faults,
                        home_shard,
                        self_shard,
                        |n, ctx| n.on_timer(ctx, token),
                    );
                }
            }
        }
        self.processed += events;
        let completed = if horizon <= deadline {
            horizon
        } else {
            deadline
        };
        if completed > self.drained_to {
            self.drained_to = completed;
        }
        (events, last_at)
    }
}

/// A [`World`](crate::World) partitioned into shards that advance in
/// lookahead-sized epochs and exchange traffic through deterministic
/// mailboxes. See the [module docs](self) for the protocol and the
/// determinism contract.
pub struct ShardedWorld<M: Message> {
    shards: Vec<Shard<M>>,
    /// Global node raw index → owning shard.
    home_shard: Vec<u32>,
    /// Global node raw index → local index within its shard.
    home_local: Vec<u32>,
    names: Vec<String>,
    topology: Topology,
    faults: FaultPlan,
    seed: u64,
    clock: SimTime,
    started: bool,
    /// Minimum propagation delay over cross-shard links, tracked at
    /// `connect` time. `None` until the first cross-shard link exists.
    min_cross_owd: Option<SimDuration>,
    lookahead_override: Option<SimDuration>,
    threads: usize,
    oracle: bool,
    tie_perturbation: Option<u64>,
    /// Coordinator-level profiler: epoch barriers and mailbox drains.
    prof: Profiler,
    event_cap: u64,
}

impl<M: Message> ShardedWorld<M> {
    /// Creates an empty sharded world with `shard_count` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count` is zero.
    pub fn new(seed: u64, shard_count: u32) -> Self {
        assert!(shard_count > 0, "a world needs at least one shard");
        ShardedWorld {
            shards: (0..shard_count).map(|_| Shard::new(seed)).collect(),
            home_shard: Vec::new(),
            home_local: Vec::new(),
            names: Vec::new(),
            topology: Topology::new(),
            faults: FaultPlan::new(),
            seed,
            clock: SimTime::ZERO,
            started: false,
            min_cross_owd: None,
            lookahead_override: None,
            threads: 1,
            oracle: false,
            tie_perturbation: None,
            prof: Profiler::new(),
            event_cap: u64::MAX,
        }
    }

    /// Registers a node on `shard` and returns its (global) id. Ids are
    /// assigned densely in call order, independent of the shard argument —
    /// the same build sequence yields the same ids at any shard count.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range or the run has started.
    pub fn add_node(
        &mut self,
        shard: u32,
        name: impl Into<String>,
        node: impl Node<M> + 'static,
    ) -> NodeId {
        assert!(!self.started, "add_node after the run started");
        assert!(
            (shard as usize) < self.shards.len(),
            "shard {shard} out of range"
        );
        let id = NodeId::from_raw(self.home_shard.len() as u32);
        let s = &mut self.shards[shard as usize];
        self.home_shard.push(shard);
        self.home_local.push(s.nodes.len() as u32);
        s.nodes.push(Some(Box::new(node)));
        s.node_ids.push(id);
        s.rngs.push(node_stream(self.seed, id.as_raw()));
        self.names.push(name.into());
        id
    }

    /// Registers a symmetric link between two nodes. A cross-shard link
    /// contributes its propagation delay to the epoch lookahead.
    ///
    /// # Panics
    ///
    /// Panics if either id is unknown, or if a cross-shard link has zero
    /// propagation delay (which would collapse the lookahead to nothing).
    pub fn connect(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) {
        assert!(
            (a.as_raw() as usize) < self.home_shard.len(),
            "unknown node {a}"
        );
        assert!(
            (b.as_raw() as usize) < self.home_shard.len(),
            "unknown node {b}"
        );
        if self.home_shard[a.as_raw() as usize] != self.home_shard[b.as_raw() as usize] {
            let owd = spec.propagation_owd();
            assert!(
                owd > SimDuration::ZERO,
                "cross-shard link {a} <-> {b} must have nonzero propagation delay: \
                 it bounds the epoch lookahead"
            );
            self.min_cross_owd = Some(match self.min_cross_owd {
                Some(cur) if cur <= owd => cur,
                _ => owd,
            });
        }
        self.topology.connect(a, b, spec);
    }

    /// Replaces FIFO tie-breaking with a seeded bijective permutation of
    /// the canonical keys, exactly like
    /// [`World::set_tie_perturbation`](crate::World::set_tie_perturbation).
    ///
    /// # Panics
    ///
    /// Panics if the run has started or events are pending.
    pub fn set_tie_perturbation(&mut self, key: u64) {
        assert!(
            !self.started && self.shards.iter_mut().all(|s| s.queue.is_empty()),
            "set_tie_perturbation must be called before any event is scheduled"
        );
        self.tie_perturbation = Some(key);
        for shard in &mut self.shards {
            shard.queue.set_perturbation(Some(key));
        }
    }

    /// The active tie-break perturbation key, if any.
    pub fn tie_perturbation(&self) -> Option<u64> {
        self.tie_perturbation
    }

    /// Turns on the shard-protocol oracle: every dispatch is checked for
    /// strictly increasing `(at, key)` order per shard, and every mailbox
    /// delivery is checked against the destination shard's completed
    /// horizon. A violated check panics with the offending pair — the
    /// sharded counterpart of
    /// [`World::enable_queue_oracle`](crate::World::enable_queue_oracle).
    ///
    /// # Panics
    ///
    /// Panics if the run has started.
    pub fn enable_shard_oracle(&mut self) {
        assert!(
            !self.started,
            "enable_shard_oracle must be called before the run starts"
        );
        self.oracle = true;
    }

    /// Overrides the computed lookahead. **Testing knob**: claiming a
    /// larger-than-true lookahead breaks the epoch-safety argument, which
    /// is precisely how the oracle tests manufacture a real interleaving
    /// bug. Never use this to "tune" a run.
    ///
    /// # Panics
    ///
    /// Panics if the run has started or `lookahead` is zero.
    pub fn override_lookahead(&mut self, lookahead: SimDuration) {
        assert!(!self.started, "override_lookahead after the run started");
        assert!(lookahead > SimDuration::ZERO, "lookahead must be positive");
        self.lookahead_override = Some(lookahead);
    }

    /// Sets how many worker threads epochs may fan out over (default 1:
    /// the sequential executor). The thread count never changes results —
    /// shards are data-independent within an epoch and mailboxes are
    /// drained by the coordinator in shard order.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Attaches a deterministic fault schedule (see
    /// [`World::set_fault_plan`](crate::World::set_fault_plan)).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// Configures tracing on every shard sink. Sharded sinks run in
    /// node-keyed id mode (see the [module docs](self)); configure a
    /// capacity large enough for the run, because ring-buffer eviction is
    /// per shard and therefore *is* shard-count-sensitive.
    pub fn set_trace_config(&mut self, config: TraceConfig) {
        for shard in &mut self.shards {
            shard.trace.set_config(config);
        }
    }

    /// Configures every shard's metric registry.
    ///
    /// # Panics
    ///
    /// Panics if the run has started.
    pub fn set_metrics_config(&mut self, config: MetricsConfig) {
        assert!(
            !self.started,
            "set_metrics_config must be called before the run starts"
        );
        for shard in &mut self.shards {
            shard.metrics.set_config(config.clone());
        }
    }

    /// Turns on the self-profiler on the coordinator (epoch barriers,
    /// mailbox drains) and on every shard (dispatch, queue, trace, …).
    pub fn enable_profiler(&mut self) {
        self.prof.enable();
        for shard in &mut self.shards {
            shard.prof.enable();
            shard.metrics.enable_self_profile();
        }
    }

    /// Merged profiler attribution: all shard profilers, the coordinator's
    /// barrier/mailbox rows, and metric-registry self-time.
    pub fn profile_report(&self) -> ProfileReport {
        let mut report = self.prof.report();
        for shard in &self.shards {
            report.merge(&shard.prof.report());
            let (nanos, calls) = shard.metrics.self_profile();
            report.nanos[ProfCategory::Metrics as usize] += nanos;
            report.calls[ProfCategory::Metrics as usize] += calls;
        }
        report
    }

    /// Limits the total number of events a run may process. The sharded
    /// executor enforces the cap at **epoch granularity** (a started epoch
    /// always completes), so the stop point depends on the shard count;
    /// it is runaway protection, not a precision instrument.
    pub fn set_event_cap(&mut self, cap: u64) {
        self.event_cap = cap;
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The epoch lookahead currently in force: the override if set, else
    /// the minimum cross-shard propagation delay, else `None` (single
    /// shard or no cross-shard link yet).
    pub fn lookahead(&self) -> Option<SimDuration> {
        self.lookahead_override.or(self.min_cross_owd)
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of registered nodes (across all shards).
    pub fn node_count(&self) -> usize {
        self.home_shard.len()
    }

    /// The registered name of a node.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.names[id.as_raw() as usize]
    }

    /// The shard owning a node.
    pub fn shard_of(&self, id: NodeId) -> u32 {
        self.home_shard[id.as_raw() as usize]
    }

    /// Total pending events across all shards.
    pub fn pending_events(&self) -> usize {
        self.shards.iter().map(|s| s.queue.len()).sum()
    }

    /// Downcasts a node to its concrete type (see
    /// [`World::node`](crate::World::node)).
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown or the type does not match.
    pub fn node<T: 'static>(&self, id: NodeId) -> &T {
        let shard = &self.shards[self.home_shard[id.as_raw() as usize] as usize];
        shard.nodes[self.home_local[id.as_raw() as usize] as usize]
            .as_ref()
            .expect("node is mid-dispatch")
            .as_any()
            .downcast_ref::<T>()
            .unwrap_or_else(|| panic!("node {id} is not a {}", std::any::type_name::<T>()))
    }

    /// Mutable variant of [`node`](Self::node).
    ///
    /// # Panics
    ///
    /// Same conditions as [`node`](Self::node).
    pub fn node_mut<T: 'static>(&mut self, id: NodeId) -> &mut T {
        let shard = &mut self.shards[self.home_shard[id.as_raw() as usize] as usize];
        shard.nodes[self.home_local[id.as_raw() as usize] as usize]
            .as_mut()
            .expect("node is mid-dispatch")
            .as_any_mut()
            .downcast_mut::<T>()
            .unwrap_or_else(|| panic!("node {id} is not a {}", std::any::type_name::<T>()))
    }

    /// Merged view of every shard's metric registry (counters add,
    /// histogram sample multisets union — all order-insensitive).
    pub fn metrics_merged(&self) -> Metrics {
        let mut merged = self.shards[0].metrics.clone();
        for shard in &self.shards[1..] {
            merged.merge(&shard.metrics);
        }
        merged
    }

    /// Removes and returns all buffered trace events merged into the
    /// canonical global dispatch order (by `(at, key, intra)` stamp).
    pub fn take_trace_events(&mut self) -> Vec<TraceEvent> {
        let mut stamped: Vec<_> = self
            .shards
            .iter_mut()
            .flat_map(|s| s.trace.drain_stamped())
            .collect();
        stamped.sort_unstable_by_key(|(stamp, _)| *stamp);
        stamped.into_iter().map(|(_, ev)| ev).collect()
    }

    /// Events processed across all shards and `run_*` calls.
    pub fn events_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.processed).sum()
    }

    /// Digest of everything the determinism contract covers, merged across
    /// shards: metric content, canonical trace stream, final clock and
    /// events processed. Equal at any shard and thread count; *not*
    /// comparable to a plain [`World`](crate::World) fingerprint (see the
    /// [module docs](self)).
    pub fn fingerprint(&self) -> Fingerprint {
        Fingerprint {
            clock_ns: self.clock.as_nanos(),
            events: self.events_processed(),
            metrics: self.metrics_merged().digest(),
            trace: self.merged_trace_digest(),
        }
    }

    /// Order-canonical digest of the per-shard trace buffers: the merged
    /// event stream in stamp order plus the folded bookkeeping counters.
    /// Mirrors [`TraceSink::digest`]'s 0-for-untouched convention.
    fn merged_trace_digest(&self) -> u64 {
        let (mut dropped, mut candidates, mut traces, mut spans) = (0u64, 0u64, 0u64, 0u64);
        let mut total_events = 0usize;
        for shard in &self.shards {
            let (d, c, t, s) = shard.trace.counters_fold();
            dropped += d;
            candidates += c;
            traces += t;
            spans += s;
            total_events += shard.trace.len();
        }
        if total_events == 0 && dropped == 0 && candidates == 0 {
            return 0;
        }
        let mut stamped: Vec<_> = self
            .shards
            .iter()
            .flat_map(|s| s.trace.stamped_events())
            .collect();
        stamped.sort_unstable_by_key(|(stamp, _)| **stamp);
        let mut h = Fnv64::new();
        h.write_u64(dropped);
        h.write_u64(candidates);
        h.write_u64(traces);
        h.write_u64(spans);
        for (_, e) in stamped {
            h.write_u64(e.at.as_nanos());
            h.write_u64(e.trace.0);
            h.write_u64(e.span.0);
            h.write_u64(e.parent.map_or(u64::MAX, |p| p.0));
            h.write_u64(e.node.as_raw() as u64);
            h.write(e.kind.as_bytes());
            h.write(e.phase.as_str().as_bytes());
        }
        h.finish()
    }

    /// The stamp key a node's `on_start` trace events carry: the synthetic
    /// key `node_raw << 40`, scrambled like every dispatch key when a
    /// perturbation is active.
    fn start_stamp_key(&self, id: NodeId) -> u64 {
        let raw = (id.as_raw() as u64) << 40;
        match self.tie_perturbation {
            Some(pert) => mix64(raw ^ pert),
            None => raw,
        }
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        // on_start runs in global id order — the same order the plain
        // world uses — then the resulting cross-shard sends are delivered
        // before the first epoch.
        for raw in 0..self.home_shard.len() {
            let id = NodeId::from_raw(raw as u32);
            let shard_idx = self.home_shard[raw] as usize;
            let local = self.home_local[raw] as usize;
            let key = self.start_stamp_key(id);
            let shard = &mut self.shards[shard_idx];
            if shard.trace.is_enabled() {
                shard.trace.set_dispatch_stamp(SimTime::ZERO, key);
            }
            let (topology, faults, home_shard) = (&self.topology, &self.faults, &self.home_shard);
            shard.dispatch(
                local,
                SimTime::ZERO,
                None,
                topology,
                faults,
                home_shard,
                shard_idx as u32,
                |node, ctx| node.on_start(ctx),
            );
        }
        self.drain_mailboxes();
    }

    /// Delivers every staged cross-shard event into its destination queue,
    /// in shard order. Order of insertion is irrelevant to results — the
    /// destination wheel orders on the canonical `(at, key)` — but fixing
    /// it keeps the walk cache-friendly and the oracle's view simple.
    fn drain_mailboxes(&mut self) {
        let t = self.prof.start();
        for src in 0..self.shards.len() {
            if self.shards[src].outbox.is_empty() {
                continue;
            }
            let mut staged = std::mem::take(&mut self.shards[src].outbox);
            for ob in staged.drain(..) {
                let dst = &mut self.shards[ob.dst_shard as usize];
                if self.oracle {
                    assert!(
                        ob.at >= dst.drained_to,
                        "shard oracle: mailbox delivery at {:?} into shard {} which already \
                         processed up to {:?} — lookahead violated",
                        ob.at,
                        ob.dst_shard,
                        dst.drained_to,
                    );
                }
                dst.queue.push_keyed(ob.at, ob.key, ob.kind);
            }
            // Hand the (now empty) buffer back so the allocation is reused.
            self.shards[src].outbox = staged;
        }
        self.prof.record(ProfCategory::MailboxDrain, t);
    }

    /// The lookahead the epoch loop must use.
    ///
    /// # Panics
    ///
    /// Panics if the world has more than one shard but no cross-shard link
    /// (the lookahead would be undefined).
    fn effective_lookahead(&self) -> SimDuration {
        self.lookahead_override
            .or(self.min_cross_owd)
            .unwrap_or_else(|| {
                panic!(
                    "a {}-shard world needs at least one cross-shard link \
                     (or override_lookahead) to define the epoch lookahead",
                    self.shards.len()
                )
            })
    }

    /// Runs until every queue drains or the clock reaches `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) -> RunReport {
        self.start_if_needed();
        let multi = self.shards.len() > 1;
        let lookahead = if multi {
            Some(self.effective_lookahead())
        } else {
            None
        };
        let mut events = 0u64;
        loop {
            if events >= self.event_cap {
                return RunReport {
                    events,
                    reason: StopReason::EventCap,
                    now: self.clock,
                };
            }
            // Epoch barrier: agree on the global window [start, horizon).
            let t = self.prof.start();
            let start = self
                .shards
                .iter_mut()
                .filter_map(|s| s.queue.peek_time())
                .min();
            self.prof.record(ProfCategory::ShardBarrier, t);
            let Some(start) = start else {
                if deadline < SimTime::MAX {
                    self.clock = deadline;
                }
                return RunReport {
                    events,
                    reason: StopReason::Idle,
                    now: self.clock,
                };
            };
            if start > deadline {
                self.clock = deadline;
                return RunReport {
                    events,
                    reason: StopReason::Deadline,
                    now: self.clock,
                };
            }
            let horizon = match lookahead {
                Some(l) => start + l,
                None => SimTime::MAX,
            };
            let (epoch_events, epoch_last) = self.run_epoch(horizon, deadline);
            events += epoch_events;
            if let Some(last) = epoch_last {
                if last > self.clock {
                    self.clock = last;
                }
            }
            self.drain_mailboxes();
        }
    }

    /// Drains every shard over `[.., horizon) ∩ [.., deadline]`, on one
    /// thread or several. Returns total events and the latest event time.
    fn run_epoch(&mut self, horizon: SimTime, deadline: SimTime) -> (u64, Option<SimTime>) {
        let oracle = self.oracle;
        let workers = self.threads.min(self.shards.len());
        let ShardedWorld {
            shards,
            topology,
            faults,
            home_shard,
            home_local,
            prof,
            ..
        } = self;
        // Reborrow shared so the per-thread closures can copy them.
        let (topology, faults): (&Topology, &FaultPlan) = (topology, faults);
        let (home_shard, home_local): (&[u32], &[u32]) = (home_shard, home_local);
        let results: Vec<(u64, Option<SimTime>)> = if workers <= 1 {
            shards
                .iter_mut()
                .enumerate()
                .map(|(i, shard)| {
                    shard.drain_epoch(
                        horizon, deadline, topology, faults, home_shard, home_local, i as u32,
                        oracle,
                    )
                })
                .collect()
        } else {
            // Scoped fan-out: shards are data-independent within an epoch
            // (each touches only its own queue/nodes/buffers), so any
            // partition of the shard vector over threads yields identical
            // results; the coordinator's join is the barrier.
            let t = prof.start();
            let chunk = shards.len().div_ceil(workers);
            let out = std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .chunks_mut(chunk)
                    .enumerate()
                    .map(|(chunk_idx, chunk_shards)| {
                        let base = chunk_idx * chunk;
                        scope.spawn(move || {
                            chunk_shards
                                .iter_mut()
                                .enumerate()
                                .map(|(j, shard)| {
                                    shard.drain_epoch(
                                        horizon,
                                        deadline,
                                        topology,
                                        faults,
                                        home_shard,
                                        home_local,
                                        (base + j) as u32,
                                        oracle,
                                    )
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("shard worker panicked"))
                    .collect()
            });
            prof.record(ProfCategory::ShardBarrier, t);
            out
        };
        let events = results.iter().map(|(e, _)| e).sum();
        let last = results.iter().filter_map(|(_, at)| *at).max();
        (events, last)
    }

    /// Runs for `span` of simulated time from the current clock.
    pub fn run_for(&mut self, span: SimDuration) -> RunReport {
        let deadline = self.clock + span;
        self.run_until(deadline)
    }

    /// Runs until every event queue is empty.
    pub fn run_to_idle(&mut self) -> RunReport {
        self.run_until(SimTime::MAX)
    }
}

impl<M: Message> std::fmt::Debug for ShardedWorld<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedWorld")
            .field("clock", &self.clock)
            .field("shards", &self.shards.len())
            .field("nodes", &self.names.len())
            .field("lookahead", &self.lookahead())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::TimerToken;

    #[derive(Debug, PartialEq)]
    struct Num(u64);
    impl Message for Num {
        fn wire_size(&self) -> usize {
            8
        }
    }

    /// Replies until the payload reaches zero; counts arrivals in metrics
    /// and observes a jittered histogram so RNG streams are exercised.
    struct Echo;
    impl Node<Num> for Echo {
        fn on_message(&mut self, ctx: &mut Context<'_, Num>, from: NodeId, msg: Num) {
            ctx.metrics().incr("echo.arrivals", 1);
            let noise = ctx.rng().unit();
            ctx.metrics().observe("echo.noise", noise);
            if msg.0 > 0 {
                ctx.send(from, Num(msg.0 - 1));
            }
        }
    }

    /// Starts a traced ping chain toward `peer` and re-arms a timer twice.
    struct Pinger {
        peer: NodeId,
        rounds: u64,
        timers: u64,
    }
    impl Node<Num> for Pinger {
        fn on_start(&mut self, ctx: &mut Context<'_, Num>) {
            ctx.begin_trace("ping");
            ctx.send(self.peer, Num(self.rounds));
            ctx.schedule(SimDuration::from_millis(3), TimerToken::new(1));
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Num>, from: NodeId, msg: Num) {
            ctx.metrics().incr("pinger.replies", 1);
            if msg.0 > 0 {
                ctx.send(from, Num(msg.0 - 1));
            } else {
                ctx.span_instant("done");
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, Num>, _token: TimerToken) {
            self.timers += 1;
            if self.timers < 3 {
                ctx.schedule(SimDuration::from_millis(3), TimerToken::new(1));
            }
        }
    }

    /// A star of pingers (spread over shards 1..N when N > 1) around one
    /// echo sink on shard 0, with per-link jitter so RNG draws matter.
    fn build(shards: u32, pert: Option<u64>, pingers: u32) -> ShardedWorld<Num> {
        let mut w = ShardedWorld::new(42, shards);
        if let Some(key) = pert {
            w.set_tie_perturbation(key);
        }
        w.set_trace_config(TraceConfig::enabled());
        let sink = w.add_node(0, "sink", Echo);
        for i in 0..pingers {
            let shard = if shards == 1 {
                0
            } else {
                1 + (i % (shards - 1))
            };
            let p = w.add_node(
                shard,
                format!("pinger{i}"),
                Pinger {
                    peer: sink,
                    rounds: 4 + (i as u64 % 3),
                    timers: 0,
                },
            );
            w.connect(
                p,
                sink,
                LinkSpec::new(1, SimDuration::from_millis(1))
                    .jitter_mean(SimDuration::from_micros(150)),
            );
        }
        w
    }

    #[test]
    fn results_are_shard_count_invariant() {
        let fp = |shards| {
            let mut w = build(shards, None, 6);
            w.run_to_idle();
            w.fingerprint()
        };
        let base = fp(1);
        assert!(base.events > 0 && base.trace != 0);
        for shards in [2, 3, 4, 7] {
            assert_eq!(fp(shards), base, "diverged at {shards} shards");
        }
    }

    #[test]
    fn results_are_shard_count_invariant_under_perturbation() {
        for n in 0..4u32 {
            let key = crate::determinism::perturbation_key(42, n);
            let fp = |shards| {
                let mut w = build(shards, Some(key), 6);
                w.run_to_idle();
                w.fingerprint()
            };
            let base = fp(1);
            for shards in [2, 4] {
                assert_eq!(fp(shards), base, "key {key:#x} diverged at {shards} shards");
            }
        }
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let fp = |threads| {
            let mut w = build(4, None, 6);
            w.set_threads(threads);
            w.run_to_idle();
            w.fingerprint()
        };
        assert_eq!(fp(1), fp(2));
        assert_eq!(fp(1), fp(8));
    }

    #[test]
    fn merged_traces_arrive_in_canonical_order() {
        let events = |shards| {
            let mut w = build(shards, None, 5);
            w.run_to_idle();
            w.take_trace_events()
        };
        let single = events(1);
        assert!(!single.is_empty());
        assert_eq!(events(3), single, "merged trace stream must be identical");
    }

    #[test]
    fn oracle_accepts_a_correct_run() {
        let mut w = build(4, None, 6);
        w.enable_shard_oracle();
        let report = w.run_to_idle();
        assert_eq!(report.reason, StopReason::Idle);
        assert!(report.events > 0);
    }

    #[test]
    #[should_panic(expected = "shard oracle")]
    fn oracle_fires_when_lookahead_is_overclaimed() {
        // Claiming a 50 ms lookahead over 1 ms links lets an epoch process
        // events whose replies land inside the already-processed window —
        // a genuine interleaving bug the oracle must catch.
        let mut w = build(2, None, 4);
        w.enable_shard_oracle();
        w.override_lookahead(SimDuration::from_millis(50));
        w.run_to_idle();
    }

    #[test]
    fn cross_shard_link_with_zero_propagation_is_rejected() {
        let mut w: ShardedWorld<Num> = ShardedWorld::new(1, 2);
        let a = w.add_node(0, "a", Echo);
        let b = w.add_node(1, "b", Echo);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            w.connect(a, b, LinkSpec::new(1, SimDuration::ZERO));
        }));
        assert!(r.is_err(), "zero-propagation cross-shard link must panic");
    }

    #[test]
    fn multi_shard_without_cross_link_panics_on_run() {
        let mut w: ShardedWorld<Num> = ShardedWorld::new(1, 2);
        w.add_node(0, "a", Echo);
        w.add_node(1, "b", Echo);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            w.run_to_idle();
        }));
        assert!(r.is_err(), "undefined lookahead must panic");
    }

    #[test]
    fn deadline_and_resume_match_plain_world_semantics() {
        let mut w = build(3, None, 4);
        let r = w.run_until(SimTime::from_millis(2));
        assert_eq!(r.reason, StopReason::Deadline);
        assert_eq!(w.now(), SimTime::from_millis(2));
        let r2 = w.run_to_idle();
        assert_eq!(r2.reason, StopReason::Idle);
        assert!(w.pending_events() == 0);
    }

    #[test]
    fn profiler_records_coordination_without_changing_results() {
        let run = |profile: bool| {
            let mut w = build(3, None, 5);
            if profile {
                w.enable_profiler();
            }
            w.run_to_idle();
            (w.fingerprint(), w.profile_report())
        };
        let (fp_off, rep_off) = run(false);
        let (fp_on, rep_on) = run(true);
        assert_eq!(fp_off, fp_on, "profiling must not perturb sim state");
        assert!(!rep_off.enabled);
        assert!(rep_on.enabled);
        assert!(rep_on.calls(ProfCategory::Dispatch) > 0);
        assert!(rep_on.calls(ProfCategory::ShardBarrier) > 0);
        assert!(rep_on.calls(ProfCategory::MailboxDrain) > 0);
    }

    #[test]
    fn node_access_and_names_span_shards() {
        let mut w = build(3, None, 4);
        w.run_to_idle();
        assert_eq!(w.node_count(), 5);
        assert_eq!(w.node_name(NodeId::from_raw(0)), "sink");
        assert_eq!(w.shard_of(NodeId::from_raw(0)), 0);
        let p1 = NodeId::from_raw(1);
        assert!(w.shard_of(p1) > 0);
        assert_eq!(w.node::<Pinger>(p1).timers, 3);
        w.node_mut::<Pinger>(p1).timers = 0;
        assert_eq!(w.node::<Pinger>(p1).timers, 0);
    }

    #[test]
    fn metrics_merge_matches_single_shard_totals() {
        let totals = |shards| {
            let mut w = build(shards, None, 6);
            w.run_to_idle();
            let m = w.metrics_merged();
            (m.counter("echo.arrivals"), m.counter("pinger.replies"))
        };
        assert_eq!(totals(1), totals(4));
    }
}
