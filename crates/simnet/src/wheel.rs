//! Hierarchical timing-wheel scheduler for the discrete-event core.
//!
//! The simulator's original event queue was a single `BinaryHeap`; every
//! push and pop cost `O(log n)` sift steps over one large, cache-hostile
//! array, which became the wall-clock ceiling once runs queue hundreds of
//! thousands of events (ROADMAP item 2). [`TimerWheel`] replaces it with a
//! calendar-queue layout:
//!
//! * **Six wheel levels** of 64 slots each. Level 0 buckets are
//!   2^16 ns ≈ 65.5 µs wide; each higher level is 64× coarser, so the wheel
//!   spans 2^52 ns ≈ 52 days — enough for DNS TTL windows, reap ticks and
//!   every timer the testbed arms. A per-level `u64` occupancy bitmap makes
//!   "next non-empty bucket" a mask-and-`trailing_zeros`.
//! * **An overflow heap** for events beyond the wheel horizon. It is
//!   ordered, so jumping the wheel across a long idle gap is `O(log n)` in
//!   the (tiny) overflow population, not a scan.
//! * **A ready run** holding only the events of the bucket currently being
//!   drained, sorted descending by `(at, seq)` so a pop is a plain
//!   `Vec::pop`. Draining buckets in full `(at, seq)` order is what makes
//!   the wheel reproduce the *exact* total order of the old `BinaryHeap`:
//!   within a bucket, events pop by `(at, seq)` — including scrambled
//!   `seq` values from tie-break perturbation — and across buckets, time
//!   ranges are disjoint, so the global pop order is identical event for
//!   event. See `DESIGN.md` §13.
//!
//! Cost model: a push lands in its final bucket directly (no sifting); a
//! pop touches the small ready heap plus, amortized, one bucket cascade per
//! level crossed. For the near-future traffic that dominates simulation
//! (sub-millisecond link delays), buckets hold a handful of events and both
//! operations are effectively `O(1)`.
//!
//! The pre-wheel heap survives as [`crate::reference::ReferenceEventQueue`]
//! and is differentially tested against the wheel (unit tests here, a
//! randomized-schedule property suite in `tests/wheel_differential.rs`, and
//! an always-on mirror oracle available via
//! [`World::enable_queue_oracle`](crate::World::enable_queue_oracle)).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// log2 of the level-0 bucket width in nanoseconds (2^16 ns ≈ 65.5 µs).
const GRANULARITY_SHIFT: u32 = 16;
/// log2 of the slot count per level.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Mask selecting a slot index.
const SLOT_MASK: u64 = SLOTS as u64 - 1;
/// Number of wheel levels; events past the last level go to overflow.
const LEVELS: usize = 6;

/// Bit position where level `l`'s slot index starts within a timestamp.
const fn shift(level: usize) -> u32 {
    GRANULARITY_SHIFT + LEVEL_BITS * level as u32
}

/// One queued event: timestamp, tie-break key, payload.
#[derive(Debug)]
struct Entry<T> {
    at: SimTime,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap but the ready/overflow heaps
        // need earliest-(at, seq)-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// One wheel level: 64 buckets plus an occupancy bitmap (bit `i` set iff
/// `slots[i]` is non-empty).
#[derive(Debug)]
struct Level<T> {
    slots: Vec<Vec<Entry<T>>>,
    occupied: u64,
}

impl<T> Level<T> {
    fn new() -> Self {
        Level {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            occupied: 0,
        }
    }
}

/// Hierarchical timing-wheel priority queue ordered by `(at, seq)`.
///
/// Drop-in replacement for a min-heap of `(SimTime, u64, T)` triples: pops
/// always return the entry with the smallest `(at, seq)` among those
/// currently queued, for *any* interleaving of pushes and pops and any
/// `seq` assignment (sequential or scrambled). The caller owns `seq`
/// uniqueness; duplicate `(at, seq)` pairs pop in an unspecified relative
/// order.
///
/// # Examples
///
/// ```
/// use ape_simnet::{SimTime, TimerWheel};
///
/// let mut wheel = TimerWheel::new();
/// wheel.push(SimTime::from_millis(5), 0, "late");
/// wheel.push(SimTime::from_millis(1), 1, "early");
/// assert_eq!(wheel.peek_time(), Some(SimTime::from_millis(1)));
/// assert_eq!(wheel.pop(), Some((SimTime::from_millis(1), 1, "early")));
/// assert_eq!(wheel.pop(), Some((SimTime::from_millis(5), 0, "late")));
/// assert_eq!(wheel.pop(), None);
/// ```
#[derive(Debug)]
pub struct TimerWheel<T> {
    levels: Vec<Level<T>>,
    /// Events of the bucket being drained, plus late pushes into the
    /// already-drained range, sorted descending by `(at, seq)` (earliest
    /// last, so popping is `Vec::pop`). Every queued event with
    /// `at < base` is here.
    ready: Vec<Entry<T>>,
    /// Far-future events beyond the wheel horizon, earliest first.
    overflow: BinaryHeap<Entry<T>>,
    /// Drain frontier in nanoseconds, always a level-0 bucket boundary.
    /// Monotone; wheel and overflow events all have `at >= base`.
    base: u64,
    /// Scratch buffer reused for bucket cascades (no per-cascade alloc).
    scratch: Vec<Entry<T>>,
    len: usize,
    peak_len: usize,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

impl<T> TimerWheel<T> {
    /// Creates an empty wheel starting at simulation time zero.
    pub fn new() -> Self {
        TimerWheel {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            ready: Vec::new(),
            overflow: BinaryHeap::new(),
            base: 0,
            scratch: Vec::new(),
            len: 0,
            peak_len: 0,
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// High-water mark of [`len`](Self::len) over the wheel's lifetime.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Approximate heap footprint of the queue's buffers in bytes (bucket,
    /// ready, overflow and scratch capacities; excludes payload-owned
    /// allocations). Used by `repro bench-simworld` to report bytes per
    /// queued event.
    pub fn approx_bytes(&self) -> usize {
        let entry = std::mem::size_of::<Entry<T>>();
        let buckets: usize = self
            .levels
            .iter()
            .flat_map(|l| l.slots.iter())
            .map(Vec::capacity)
            .sum();
        (buckets + self.ready.capacity() + self.overflow.capacity() + self.scratch.capacity())
            * entry
            + self.levels.len() * SLOTS * std::mem::size_of::<Vec<Entry<T>>>()
    }

    /// Queues `item` at time `at` with tie-break key `seq`.
    pub fn push(&mut self, at: SimTime, seq: u64, item: T) {
        let entry = Entry { at, seq, item };
        if at.as_nanos() < self.base {
            // Late push into the drained range (e.g. a zero-delay send
            // scheduled at the instant being dispatched): sorted-insert
            // into the ready run, which keeps (at, seq) order among
            // survivors. The run is bucket-sized and the reversed `Ord`
            // puts early events near the end, so the shift is short.
            let pos = self.ready.binary_search(&entry).unwrap_or_else(|p| p);
            self.ready.insert(pos, entry);
        } else {
            self.place(entry);
        }
        self.len += 1;
        self.peak_len = self.peak_len.max(self.len);
    }

    /// Removes and returns the earliest `(at, seq)` event.
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        if self.ready.is_empty() {
            self.refill();
        }
        let entry = self.ready.pop()?;
        self.len -= 1;
        Some((entry.at, entry.seq, entry.item))
    }

    /// Timestamp of the earliest queued event, if any.
    ///
    /// Takes `&mut self` because peeking may advance the wheel's drain
    /// frontier past empty buckets (pure bookkeeping: no event is removed
    /// and the observable pop order is unchanged).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if self.ready.is_empty() {
            self.refill();
        }
        self.ready.last().map(|e| e.at)
    }

    /// Inserts an entry with `at >= base` into its wheel level or the
    /// overflow heap.
    fn place(&mut self, entry: Entry<T>) {
        let at = entry.at.as_nanos();
        debug_assert!(
            at >= self.base,
            "place() below the drain frontier: at={at} base={}",
            self.base
        );
        for (l, level) in self.levels.iter_mut().enumerate() {
            // The event belongs at the lowest level whose coarser prefix
            // matches the frontier's: the cursor then reaches its slot
            // before that level wraps, so absolute slot indexing is exact.
            if at >> shift(l + 1) == self.base >> shift(l + 1) {
                let slot = ((at >> shift(l)) & SLOT_MASK) as usize;
                level.slots[slot].push(entry);
                level.occupied |= 1 << slot;
                return;
            }
        }
        self.overflow.push(entry);
    }

    /// Moves the next non-empty bucket into the ready heap, cascading
    /// higher-level buckets and ingesting overflow as needed. No-op when
    /// no events remain outside `ready`.
    fn refill(&mut self) {
        loop {
            let Some((level, slot)) = self.next_occupied() else {
                if !self.ingest_overflow() {
                    return;
                }
                continue;
            };
            // Start of the found bucket: frontier's coarser prefix with
            // this level's slot index substituted and finer bits cleared.
            let width_shift = shift(level);
            let slot_start =
                (self.base & !((1u64 << shift(level + 1)) - 1)) | ((slot as u64) << width_shift);
            let mut bucket = std::mem::take(&mut self.scratch);
            std::mem::swap(&mut bucket, &mut self.levels[level].slots[slot]);
            self.levels[level].occupied &= !(1 << slot);
            if level == 0 {
                // Bucket granularity reached: everything in it is ready.
                // Saturate: the last bucket before u64::MAX has no end.
                self.base = slot_start.saturating_add(1 << width_shift);
                // `ready` is empty here (refill's precondition), so the
                // bucket becomes the new run wholesale; the reversed `Ord`
                // makes an ascending sort yield descending `(at, seq)`.
                debug_assert!(self.ready.is_empty());
                std::mem::swap(&mut self.ready, &mut bucket);
                self.ready.sort_unstable();
                self.scratch = bucket;
                return;
            }
            // Coarse bucket: advance the frontier to its start and cascade
            // its events down (each now lands at a strictly lower level).
            // `max` keeps the frontier monotone when the bucket straddles
            // it (its start can equal, never exceed, the current frontier).
            self.base = self.base.max(slot_start);
            for entry in bucket.drain(..) {
                self.place(entry);
            }
            self.scratch = bucket;
        }
    }

    /// Finds the occupied slot whose bucket starts earliest at or after the
    /// frontier, preferring the coarsest level on ties.
    ///
    /// Earliest-start (not lowest-level) selection matters when the frontier
    /// sits inside a still-occupied coarse slot: that bucket's start is at or
    /// before `base`, so it wins and cascades before any finer-level bucket
    /// is drained. Preferring level 0 here would let a level-0 drain jump
    /// `base` over events still buried in the coarse bucket.
    fn next_occupied(&self) -> Option<(usize, usize)> {
        let mut best: Option<(usize, usize, u64)> = None;
        for (l, level) in self.levels.iter().enumerate() {
            let cursor = (self.base >> shift(l)) & SLOT_MASK;
            let pending = level.occupied & (u64::MAX << cursor);
            if pending == 0 {
                continue;
            }
            let slot = pending.trailing_zeros() as u64;
            let slot_start = (self.base & !((1u64 << shift(l + 1)) - 1)) | (slot << shift(l));
            // `<=` so a coarser level sharing a start time replaces a finer
            // one: its events redistribute down before the fine slot drains.
            if best.is_none_or(|(_, _, start)| slot_start <= start) {
                best = Some((l, slot as usize, slot_start));
            }
        }
        best.map(|(l, slot, _)| (l, slot))
    }

    /// Jumps the frontier to the earliest overflow event and moves every
    /// overflow event inside the new wheel horizon onto the wheel. Returns
    /// `false` when the overflow heap is empty.
    fn ingest_overflow(&mut self) -> bool {
        let Some(earliest) = self.overflow.peek() else {
            return false;
        };
        self.base = earliest.at.as_nanos() & !((1u64 << GRANULARITY_SHIFT) - 1);
        while let Some(entry) = self.overflow.peek() {
            if entry.at.as_nanos() >> shift(LEVELS) != self.base >> shift(LEVELS) {
                break;
            }
            let entry = self.overflow.pop().expect("peeked overflow entry");
            self.place(entry);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ReferenceEventQueue;
    use crate::rng::SimRng;

    /// Pops everything, asserting the wheel and the heap oracle agree on
    /// every single `(at, seq, item)` triple.
    fn drain_both(wheel: &mut TimerWheel<u32>, heap: &mut ReferenceEventQueue<u32>) {
        loop {
            assert_eq!(wheel.peek_time(), heap.peek_time());
            let (w, h) = (wheel.pop(), heap.pop());
            assert_eq!(w, h);
            if w.is_none() {
                return;
            }
        }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut wheel = TimerWheel::new();
        wheel.push(SimTime::from_millis(2), 1, 10);
        wheel.push(SimTime::from_millis(2), 0, 11);
        wheel.push(SimTime::from_millis(1), 2, 12);
        assert_eq!(wheel.pop(), Some((SimTime::from_millis(1), 2, 12)));
        assert_eq!(wheel.pop(), Some((SimTime::from_millis(2), 0, 11)));
        assert_eq!(wheel.pop(), Some((SimTime::from_millis(2), 1, 10)));
        assert_eq!(wheel.pop(), None);
        assert!(wheel.is_empty());
        assert_eq!(wheel.peak_len(), 3);
    }

    #[test]
    fn matches_heap_on_randomized_mixed_horizon_schedule() {
        let mut rng = SimRng::seed_from(0xC0FFEE);
        let mut wheel = TimerWheel::new();
        let mut heap = ReferenceEventQueue::new();
        let mut last = SimTime::ZERO;
        for seq in 0..5_000u64 {
            let at = match seq % 10 {
                // Tie burst: re-use the previous timestamp.
                0 => last,
                // Far future: seconds to hours out (overflow territory).
                1 => SimTime::from_nanos(rng.uniform_u64(1_000_000_000, 7_200_000_000_000)),
                // Near future: microseconds to milliseconds.
                _ => SimTime::from_nanos(rng.uniform_u64(0, 20_000_000)),
            };
            last = at;
            wheel.push(at, seq, seq as u32);
            heap.push(at, seq, seq as u32);
        }
        drain_both(&mut wheel, &mut heap);
    }

    #[test]
    fn matches_heap_with_interleaved_pushes_at_the_drain_frontier() {
        // Models dispatch-time scheduling: after each pop, push new events
        // at exactly the popped time (zero-delay send) and slightly later.
        let mut rng = SimRng::seed_from(7);
        let mut wheel = TimerWheel::new();
        let mut heap = ReferenceEventQueue::new();
        let mut seq = 0u64;
        let mut push = |w: &mut TimerWheel<u32>, h: &mut ReferenceEventQueue<u32>, at| {
            w.push(at, seq, seq as u32);
            h.push(at, seq, seq as u32);
            seq += 1;
        };
        for _ in 0..64 {
            let at = SimTime::from_nanos(rng.uniform_u64(0, 3_000_000));
            push(&mut wheel, &mut heap, at);
        }
        for _ in 0..2_000 {
            assert_eq!(wheel.peek_time(), heap.peek_time());
            let (w, h) = (wheel.pop(), heap.pop());
            assert_eq!(w, h);
            let Some((at, _, _)) = w else { break };
            if rng.chance(0.4) {
                push(&mut wheel, &mut heap, at);
            }
            if rng.chance(0.4) {
                let delta = rng.uniform_u64(0, 400_000);
                push(
                    &mut wheel,
                    &mut heap,
                    at + crate::SimDuration::from_nanos(delta),
                );
            }
        }
        drain_both(&mut wheel, &mut heap);
    }

    #[test]
    fn matches_heap_under_scrambled_tie_break_keys() {
        // Perturbed seq values are arbitrary u64s, so a late push can carry
        // a *smaller* key than an already-popped tie — the wheel must agree
        // with the heap's min-among-present semantics, not global order.
        let mut wheel = TimerWheel::new();
        let mut heap = ReferenceEventQueue::new();
        let t = SimTime::from_millis(3);
        for (i, seq) in [0xFFFF_u64, 7, 0x8000_0000, 1, u64::MAX, 0]
            .into_iter()
            .enumerate()
        {
            wheel.push(t, seq, i as u32);
            heap.push(t, seq, i as u32);
        }
        assert_eq!(wheel.pop(), heap.pop());
        // Mid-drain push at the same instant with a tiny key.
        wheel.push(t, 2, 99);
        heap.push(t, 2, 99);
        drain_both(&mut wheel, &mut heap);
    }

    #[test]
    fn far_future_events_cross_the_overflow_horizon() {
        let mut wheel = TimerWheel::new();
        let mut heap = ReferenceEventQueue::new();
        // Beyond the 2^52 ns wheel horizon (~52 days) and near u64::MAX.
        let far = [
            SimTime::from_nanos(1 << 53),
            SimTime::from_nanos((1 << 53) + 1),
            SimTime::from_nanos(u64::MAX - 1),
            SimTime::from_secs(100 * 24 * 3600),
            SimTime::from_millis(1),
        ];
        for (seq, at) in far.into_iter().enumerate() {
            wheel.push(at, seq as u64, seq as u32);
            heap.push(at, seq as u64, seq as u32);
        }
        drain_both(&mut wheel, &mut heap);
    }

    #[test]
    fn long_idle_gap_is_a_jump_not_a_scan() {
        let mut wheel = TimerWheel::new();
        wheel.push(SimTime::from_secs(3_600), 0, 1u32);
        // One peek must land directly on the hour-away event.
        assert_eq!(wheel.peek_time(), Some(SimTime::from_secs(3_600)));
        assert_eq!(wheel.pop(), Some((SimTime::from_secs(3_600), 0, 1)));
        // The frontier advanced; nearer times pushed later still pop fine.
        wheel.push(SimTime::from_secs(7_200), 1, 2u32);
        assert_eq!(wheel.pop(), Some((SimTime::from_secs(7_200), 1, 2)));
    }

    #[test]
    fn len_and_bytes_accounting() {
        let mut wheel = TimerWheel::new();
        assert!(wheel.is_empty());
        assert_eq!(wheel.peek_time(), None);
        for seq in 0..100u64 {
            wheel.push(SimTime::from_nanos(seq * 37_000), seq, seq as u32);
        }
        assert_eq!(wheel.len(), 100);
        assert_eq!(wheel.peak_len(), 100);
        assert!(wheel.approx_bytes() > 0);
        for _ in 0..100 {
            assert!(wheel.pop().is_some());
        }
        assert_eq!(wheel.len(), 0);
        assert_eq!(wheel.peak_len(), 100);
    }
}
