//! Node identity and behaviour traits.

use std::any::Any;
use std::fmt;

/// Identifies a node within a [`World`](crate::World).
///
/// Ids are assigned densely in insertion order by
/// [`World::add_node`](crate::World::add_node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Constructs an id from its raw index. Only useful in tests and
    /// builders; normal code receives ids from `World::add_node`.
    pub const fn from_raw(raw: u32) -> Self {
        NodeId(raw)
    }

    /// The raw index of this id.
    pub const fn as_raw(self) -> u32 {
        self.0
    }

    /// The index into the world's node table.
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// An opaque timer handle a node uses to distinguish its own timers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TimerToken(u64);

impl TimerToken {
    /// Creates a token from a raw value chosen by the node.
    pub const fn new(raw: u64) -> Self {
        TimerToken(raw)
    }

    /// The raw value.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl From<u64> for TimerToken {
    fn from(raw: u64) -> Self {
        TimerToken(raw)
    }
}

/// Messages exchanged between nodes.
///
/// `wire_size` drives transfer-time and bandwidth modelling; it should be the
/// approximate on-the-wire size in bytes (headers included).
///
/// Messages are `Send` so a whole [`World`](crate::World) — including its
/// pending event queue — can be handed to a worker thread by the parallel
/// experiment runner.
pub trait Message: fmt::Debug + Send + 'static {
    /// Approximate serialized size in bytes.
    fn wire_size(&self) -> usize;
}

/// Blanket helper allowing `dyn Node` values to be downcast after a run.
pub trait AsAny {
    /// Upcasts to `&dyn Any`.
    fn as_any(&self) -> &dyn Any;
    /// Upcasts to `&mut dyn Any`.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Any> AsAny for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Behaviour of a simulated node.
///
/// Nodes are single-threaded state machines driven by the world's event
/// loop: they receive messages from linked peers and timer callbacks they
/// scheduled themselves, and react by mutating local state and emitting new
/// messages or timers through the [`Context`](crate::Context).
///
/// Nodes are `Send` (but not `Sync`): each [`World`](crate::World) owns its
/// nodes exclusively, and the parallel experiment runner moves whole worlds
/// onto worker threads. No node is ever shared between threads.
pub trait Node<M: Message>: AsAny + Send {
    /// Called once before the first event is processed.
    fn on_start(&mut self, _ctx: &mut crate::Context<'_, M>) {}

    /// Called when a message from `from` arrives.
    fn on_message(&mut self, ctx: &mut crate::Context<'_, M>, from: NodeId, msg: M);

    /// Called when a timer scheduled by this node fires.
    fn on_timer(&mut self, _ctx: &mut crate::Context<'_, M>, _token: TimerToken) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from_raw(5);
        assert_eq!(id.as_raw(), 5);
        assert_eq!(id.index(), 5);
        assert_eq!(format!("{id}"), "node#5");
    }

    #[test]
    fn timer_token_roundtrip() {
        let t = TimerToken::from(9u64);
        assert_eq!(t.get(), 9);
        assert_eq!(TimerToken::new(9), t);
    }

    #[test]
    fn as_any_downcasts() {
        struct S(u8);
        let s = S(3);
        let any: &dyn AsAny = &s;
        assert_eq!(any.as_any().downcast_ref::<S>().unwrap().0, 3);
    }
}
