//! Virtual time for the discrete-event simulator.
//!
//! All simulation time is kept in integer nanoseconds so that event ordering
//! is exact and runs are bit-for-bit reproducible. [`SimTime`] is an absolute
//! instant on the simulation clock (nanoseconds since simulation start) and
//! [`SimDuration`] a span between two instants.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock.
///
/// # Examples
///
/// ```
/// use ape_simnet::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_millis_f64(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time.
///
/// # Examples
///
/// ```
/// use ape_simnet::SimDuration;
///
/// let d = SimDuration::from_micros(1500);
/// assert_eq!(d.as_millis_f64(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable instant; used as an "infinitely far" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `millis` milliseconds after simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant `secs` seconds after simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration of `mins` minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60 * 1_000_000_000)
    }

    /// Creates a duration from a float number of milliseconds.
    ///
    /// Negative or non-finite inputs are a producer bug: debug builds
    /// panic, release builds clamp to zero.
    pub fn from_millis_f64(millis: f64) -> Self {
        debug_assert!(
            millis.is_finite() && millis >= 0.0,
            "non-finite or negative duration: {millis} ms"
        );
        if !millis.is_finite() || millis <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((millis * 1e6).round() as u64)
    }

    /// Creates a duration from a float number of seconds.
    ///
    /// Negative or non-finite inputs are a producer bug: debug builds
    /// panic, release builds clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        debug_assert!(
            secs.is_finite() && secs >= 0.0,
            "non-finite or negative duration: {secs} s"
        );
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Creates a duration from a float number of nanoseconds, truncating
    /// toward zero.
    ///
    /// Truncation (not rounding) is deliberate: this is the typed home for
    /// the `(x as f64 * rate) as u64` pattern that used to live at call
    /// sites, and replaying old traces requires the exact same values.
    /// Negative or non-finite inputs are a producer bug: debug builds
    /// panic, release builds clamp to zero.
    pub fn from_nanos_f64(nanos: f64) -> Self {
        debug_assert!(
            nanos.is_finite() && nanos >= 0.0,
            "non-finite or negative duration: {nanos} ns"
        );
        if !nanos.is_finite() || nanos <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration(nanos as u64)
    }

    /// Nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole seconds in this duration, truncating.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Whole seconds, saturating at `u32::MAX` — sized for wire fields
    /// like DNS TTLs, replacing ad-hoc `as_secs_f64() as u32` casts.
    pub fn as_secs_u32(self) -> u32 {
        u32::try_from(self.as_secs()).unwrap_or(u32::MAX)
    }

    /// Milliseconds in this duration, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds in this duration, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Whether this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Multiplies the duration by a non-negative float factor.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// How many whole `width`-sized slots this duration spans (floor
    /// division). The typed entry point for calendar/bucket indexing, so
    /// callers never do raw integer math on nanosecond counts.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn div_floor(self, width: SimDuration) -> u64 {
        assert!(!width.is_zero(), "slot width must be positive");
        self.0 / width.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        // Saturation at u64::MAX would silently freeze the clock ~584 years
        // in; debug builds flag the overflow at its source instead.
        debug_assert!(
            self.0.checked_add(rhs.0).is_some(),
            "SimTime overflow: {} ns + {} ns",
            self.0,
            rhs.0
        );
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_millis(10) + SimDuration::from_micros(500);
        assert_eq!(t.as_nanos(), 10_500_000);
        assert_eq!((t - SimTime::from_millis(10)).as_millis_f64(), 0.5);
    }

    #[test]
    fn subtraction_saturates() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert_eq!(a - b, SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_millis(1).saturating_sub(SimDuration::from_millis(5)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn float_constructors_accept_good_input() {
        assert_eq!(SimDuration::from_millis_f64(2.5).as_nanos(), 2_500_000);
        assert_eq!(SimDuration::from_millis_f64(0.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
    }

    #[test]
    fn from_nanos_f64_truncates_exactly_like_the_raw_cast() {
        // Pinned replay-compatibility contract: `from_nanos_f64(x)` must
        // produce the same nanos as the `(x) as u64` casts it replaced at
        // call sites (core/src/router.rs CPU-cost model), or old traces
        // stop replaying bitwise-identically.
        for x in [0.0, 0.4, 0.9999, 1.0, 61.0, 1500.75, 9.6e4, 1.23456789e9] {
            assert_eq!(SimDuration::from_nanos_f64(x).as_nanos(), x as u64);
        }
        // The exact shape router.rs computes: size * per-byte cost.
        let (size, per_byte_ns) = (1500u32, 0.64f64);
        assert_eq!(
            SimDuration::from_nanos_f64(size as f64 * per_byte_ns).as_nanos(),
            (size as f64 * per_byte_ns) as u64
        );
    }

    #[test]
    fn whole_second_accessors_match_the_float_casts_they_replaced() {
        // Pinned: `as_secs()` / `as_secs_u32()` must agree with the
        // `as_secs_f64() as u64/u32` truncation they replaced (nodes/src/
        // ap.rs DNS TTL, core/src/router.rs second-boundary loop) for every
        // duration a simulation can produce (minutes to days — far below
        // the ~104-day scale where f64 division could round differently).
        for ns in [
            0u64,
            1,
            999_999_999,
            1_000_000_000,
            1_000_000_001,
            59_999_999_999,
            86_400_000_000_000,
            7 * 86_400_000_000_000,
        ] {
            let d = SimDuration::from_nanos(ns);
            assert_eq!(d.as_secs(), d.as_secs_f64() as u64, "ns={ns}");
            assert_eq!(d.as_secs_u32(), d.as_secs_f64() as u32, "ns={ns}");
        }
    }

    #[test]
    fn as_secs_u32_saturates() {
        let huge = SimDuration::from_secs(u64::from(u32::MAX) + 5);
        assert_eq!(huge.as_secs_u32(), u32::MAX);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-finite or negative duration")]
    fn float_constructors_panic_on_negative_in_debug() {
        let _ = SimDuration::from_millis_f64(-3.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-finite or negative duration")]
    fn float_constructors_panic_on_nan_in_debug() {
        let _ = SimDuration::from_secs_f64(f64::NAN);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn float_constructors_clamp_bad_input_in_release() {
        assert_eq!(SimDuration::from_millis_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "SimTime overflow")]
    fn time_plus_duration_overflow_panics_in_debug() {
        let _ = SimTime::MAX + SimDuration::from_nanos(1);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn time_plus_duration_saturates_in_release() {
        assert_eq!(SimTime::MAX + SimDuration::from_nanos(1), SimTime::MAX);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(10);
        assert_eq!((d * 3).as_millis_f64(), 30.0);
        assert_eq!((d / 2).as_millis_f64(), 5.0);
        assert_eq!(d.mul_f64(0.5).as_millis_f64(), 5.0);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_micros(999) < SimDuration::from_millis(1));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(format!("{}", SimTime::from_millis(1)), "1.000ms");
        assert_eq!(format!("{}", SimDuration::from_micros(250)), "0.250ms");
    }

    #[test]
    fn saturating_since_orders() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(8);
        assert_eq!(b.saturating_since(a), SimDuration::from_millis(3));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn min_max_helpers() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(8);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = SimDuration::from_millis(5);
        let y = SimDuration::from_millis(8);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }
}
