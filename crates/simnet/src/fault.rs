//! Deterministic link-fault injection.
//!
//! The paper's premise is the flaky last hop: §V evaluates APE-CACHE under
//! real WiFi radio conditions where loss and latency spikes are the norm.
//! [`LinkSpec::loss_probability`](crate::LinkSpec::loss_probability) models
//! steady-state random loss; a [`FaultPlan`] layers *scheduled* disturbances
//! on top — link-down windows, loss-rate bursts, and delay spikes, each
//! scoped to one link and one simulated-time interval.
//!
//! A plan is pure data attached to the [`World`](crate::World) before the
//! run: the same seed and plan always produce the same event sequence, so
//! faulted runs stay inside the bitwise-determinism contract and replay
//! exactly under [`check_determinism`](crate::World::check_determinism).
//! An **empty** plan draws zero randomness and touches no metrics, so a
//! world without faults is bit-identical to one built before this module
//! existed.
//!
//! Fault windows apply where loss does: on node-initiated sends
//! ([`Context::send`](crate::Context::send)/`send_after`). Messages injected
//! with [`World::post`](crate::World::post) bypass faults, like they bypass
//! loss — they seed the run from outside the network.

use crate::node::NodeId;
use crate::time::{SimDuration, SimTime};

/// What a fault window does to traversals of its link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Every traversal during the window is dropped (partition).
    Down,
    /// Each traversal is independently dropped with this probability,
    /// on top of the link's steady-state `loss_probability`.
    Loss(f64),
    /// Every traversal is delayed by this much extra one-way delay.
    Delay(SimDuration),
}

/// One scheduled disturbance: a [`FaultKind`] active on the link between
/// two nodes (both directions) over `[start, end)` of simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultWindow {
    a: NodeId,
    b: NodeId,
    start: SimTime,
    end: SimTime,
    kind: FaultKind,
}

impl FaultWindow {
    fn covers(&self, from: NodeId, to: NodeId, now: SimTime) -> bool {
        ((self.matches_directed(from, to)) || self.matches_directed(to, from))
            && self.start <= now
            && now < self.end
    }

    fn matches_directed(&self, from: NodeId, to: NodeId) -> bool {
        self.a == from && self.b == to
    }
}

/// The combined effect of every active fault window on one traversal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkEffect {
    /// The link is partitioned: drop unconditionally.
    pub down: bool,
    /// Combined burst-loss probability (independent of steady-state loss).
    pub loss: f64,
    /// Total extra one-way delay.
    pub extra_delay: SimDuration,
}

impl LinkEffect {
    /// The no-fault effect.
    pub const NONE: LinkEffect = LinkEffect {
        down: false,
        loss: 0.0,
        extra_delay: SimDuration::ZERO,
    };
}

/// A deterministic schedule of link disturbances for one run.
///
/// Built before the run and attached with
/// [`World::set_fault_plan`](crate::World::set_fault_plan). Windows may
/// overlap: concurrent loss bursts compose as independent drop trials
/// (`1 − ∏(1 − pᵢ)`), delay spikes add, and any active
/// [`FaultKind::Down`] window wins outright.
///
/// # Examples
///
/// ```
/// use ape_simnet::{FaultPlan, NodeId, SimDuration, SimTime};
///
/// let a = NodeId::from_raw(0);
/// let b = NodeId::from_raw(1);
/// let plan = FaultPlan::new()
///     .link_down(a, b, SimTime::from_secs(10), SimTime::from_secs(12))
///     .loss_burst(a, b, SimTime::from_secs(30), SimTime::from_secs(40), 0.25)
///     .delay_spike(a, b, SimTime::from_secs(50), SimTime::from_secs(55),
///                  SimDuration::from_millis(80));
/// assert!(plan.effect(a, b, SimTime::from_secs(11)).down);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// Creates an empty plan (no disturbances).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan schedules no disturbances at all.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Number of scheduled windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Schedules a full partition of the `a`↔`b` link over `[start, end)`.
    pub fn link_down(self, a: NodeId, b: NodeId, start: SimTime, end: SimTime) -> Self {
        self.window(a, b, start, end, FaultKind::Down)
    }

    /// Schedules a burst of extra loss probability `p` on `a`↔`b` over
    /// `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1)` — for certain loss use
    /// [`link_down`](Self::link_down).
    pub fn loss_burst(self, a: NodeId, b: NodeId, start: SimTime, end: SimTime, p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "burst loss probability must be in [0,1)"
        );
        self.window(a, b, start, end, FaultKind::Loss(p))
    }

    /// Schedules an extra one-way delay on `a`↔`b` over `[start, end)`.
    pub fn delay_spike(
        self,
        a: NodeId,
        b: NodeId,
        start: SimTime,
        end: SimTime,
        extra: SimDuration,
    ) -> Self {
        self.window(a, b, start, end, FaultKind::Delay(extra))
    }

    /// Adds one window of any kind.
    pub fn window(
        mut self,
        a: NodeId,
        b: NodeId,
        start: SimTime,
        end: SimTime,
        kind: FaultKind,
    ) -> Self {
        assert!(start <= end, "fault window must not end before it starts");
        self.windows.push(FaultWindow {
            a,
            b,
            start,
            end,
            kind,
        });
        self
    }

    /// Resolves the combined effect of all windows active on the
    /// `from`→`to` traversal at time `now`.
    ///
    /// Windows are symmetric (either direction matches). A linear scan is
    /// deliberate: plans are small (tens of windows) and scan order never
    /// affects the result, keeping this path determinism-safe.
    pub fn effect(&self, from: NodeId, to: NodeId, now: SimTime) -> LinkEffect {
        if self.windows.is_empty() {
            return LinkEffect::NONE;
        }
        let mut effect = LinkEffect::NONE;
        let mut pass = 1.0f64;
        for w in &self.windows {
            if !w.covers(from, to, now) {
                continue;
            }
            match w.kind {
                FaultKind::Down => effect.down = true,
                FaultKind::Loss(p) => pass *= 1.0 - p,
                FaultKind::Delay(extra) => effect.extra_delay += extra,
            }
        }
        effect.loss = 1.0 - pass;
        effect
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids() -> (NodeId, NodeId, NodeId) {
        (
            NodeId::from_raw(0),
            NodeId::from_raw(1),
            NodeId::from_raw(2),
        )
    }

    #[test]
    fn empty_plan_has_no_effect() {
        let (a, b, _) = ids();
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.effect(a, b, SimTime::from_secs(5)), LinkEffect::NONE);
    }

    #[test]
    fn down_window_is_half_open_and_symmetric() {
        let (a, b, c) = ids();
        let plan = FaultPlan::new().link_down(a, b, SimTime::from_secs(10), SimTime::from_secs(20));
        assert!(!plan.effect(a, b, SimTime::from_nanos(9_999_999_999)).down);
        assert!(plan.effect(a, b, SimTime::from_secs(10)).down);
        assert!(plan.effect(b, a, SimTime::from_secs(19)).down);
        assert!(!plan.effect(a, b, SimTime::from_secs(20)).down);
        // Other links are untouched.
        assert!(!plan.effect(a, c, SimTime::from_secs(15)).down);
    }

    #[test]
    fn overlapping_loss_bursts_compose_independently() {
        let (a, b, _) = ids();
        let plan = FaultPlan::new()
            .loss_burst(a, b, SimTime::ZERO, SimTime::from_secs(10), 0.5)
            .loss_burst(a, b, SimTime::from_secs(5), SimTime::from_secs(10), 0.5);
        let early = plan.effect(a, b, SimTime::from_secs(1));
        assert!((early.loss - 0.5).abs() < 1e-12);
        let late = plan.effect(a, b, SimTime::from_secs(7));
        assert!((late.loss - 0.75).abs() < 1e-12, "loss {}", late.loss);
    }

    #[test]
    fn delay_spikes_add() {
        let (a, b, _) = ids();
        let plan = FaultPlan::new()
            .delay_spike(
                a,
                b,
                SimTime::ZERO,
                SimTime::from_secs(10),
                SimDuration::from_millis(30),
            )
            .delay_spike(
                a,
                b,
                SimTime::ZERO,
                SimTime::from_secs(10),
                SimDuration::from_millis(20),
            );
        let effect = plan.effect(b, a, SimTime::from_secs(2));
        assert_eq!(effect.extra_delay, SimDuration::from_millis(50));
        assert!(!effect.down);
        assert_eq!(effect.loss, 0.0);
    }

    #[test]
    #[should_panic(expected = "burst loss probability")]
    fn loss_burst_rejects_one() {
        let (a, b, _) = ids();
        let _ = FaultPlan::new().loss_burst(a, b, SimTime::ZERO, SimTime::from_secs(1), 1.0);
    }

    #[test]
    #[should_panic(expected = "must not end before")]
    fn inverted_window_rejected() {
        let (a, b, _) = ids();
        let _ = FaultPlan::new().link_down(a, b, SimTime::from_secs(2), SimTime::from_secs(1));
    }
}
