//! Network links and topology.
//!
//! Links are modeled end-to-end between two simulated nodes: a hop count, a
//! per-hop one-way propagation delay, a bottleneck bandwidth, and an
//! exponential jitter tail. This matches how the paper characterizes its
//! paths (e.g. "7 hops away", "12 hops away", WiFi one hop).

use std::collections::HashMap;

use crate::node::NodeId;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Characteristics of a (directed-pair symmetric) network path.
///
/// The one-way delay experienced by a message of `size` bytes is
/// `hops * per_hop_owd + size / bandwidth + Exp(jitter_mean)`.
///
/// # Examples
///
/// ```
/// use ape_simnet::{LinkSpec, SimDuration};
///
/// // A WiFi hop: ~1.5 ms one way, 50 MB/s, light jitter.
/// let wifi = LinkSpec::new(1, SimDuration::from_micros(1500))
///     .bandwidth_bytes_per_sec(50_000_000)
///     .jitter_mean(SimDuration::from_micros(200));
/// assert_eq!(wifi.hops(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    hops: u32,
    per_hop_owd: SimDuration,
    bandwidth_bytes_per_sec: u64,
    jitter_mean: SimDuration,
    loss_probability: f64,
}

impl LinkSpec {
    /// Creates a link with the given hop count and per-hop one-way delay.
    ///
    /// Bandwidth defaults to 100 MB/s and jitter to zero.
    pub fn new(hops: u32, per_hop_owd: SimDuration) -> Self {
        LinkSpec {
            hops: hops.max(1),
            per_hop_owd,
            bandwidth_bytes_per_sec: 100_000_000,
            jitter_mean: SimDuration::ZERO,
            loss_probability: 0.0,
        }
    }

    /// Convenience constructor from a round-trip time: the per-hop one-way
    /// delay is `rtt / (2 * hops)`.
    pub fn from_rtt(hops: u32, rtt: SimDuration) -> Self {
        let hops = hops.max(1);
        LinkSpec::new(hops, rtt / (2 * hops as u64))
    }

    /// Sets the bottleneck bandwidth in bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is zero.
    pub fn bandwidth_bytes_per_sec(mut self, bps: u64) -> Self {
        assert!(bps > 0, "bandwidth must be positive");
        self.bandwidth_bytes_per_sec = bps;
        self
    }

    /// Sets the mean of the exponential jitter added to each traversal.
    pub fn jitter_mean(mut self, mean: SimDuration) -> Self {
        self.jitter_mean = mean;
        self
    }

    /// Sets the probability that a single traversal drops the message.
    ///
    /// `p == 1.0` is valid and models an always-lossy link (useful as a
    /// degenerate fault fixture): every traversal is dropped.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a finite value within `[0, 1]`.
    pub fn loss_probability(mut self, p: f64) -> Self {
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "loss probability must be in [0,1]"
        );
        self.loss_probability = p;
        self
    }

    /// Hop count of this path.
    pub fn hops(&self) -> u32 {
        self.hops
    }

    /// Base propagation one-way delay (without transfer time or jitter).
    pub fn propagation_owd(&self) -> SimDuration {
        self.per_hop_owd * self.hops as u64
    }

    /// Nominal round-trip time for a tiny message without jitter.
    pub fn nominal_rtt(&self) -> SimDuration {
        self.propagation_owd() * 2
    }

    /// Serialization/transfer time for `size` bytes.
    pub fn transfer_time(&self, size: usize) -> SimDuration {
        SimDuration::from_secs_f64(size as f64 / self.bandwidth_bytes_per_sec as f64)
    }

    /// Samples the one-way delay for a message of `size` bytes.
    pub fn sample_owd(&self, size: usize, rng: &mut SimRng) -> SimDuration {
        self.propagation_owd() + self.transfer_time(size) + rng.jitter(self.jitter_mean)
    }

    /// Samples whether a traversal is lost.
    pub fn sample_loss(&self, rng: &mut SimRng) -> bool {
        self.loss_probability > 0.0 && rng.chance(self.loss_probability)
    }
}

/// Static wiring between nodes: which pairs can exchange messages and with
/// what path characteristics. Links are symmetric unless both directions are
/// registered with distinct specs.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    links: HashMap<(NodeId, NodeId), LinkSpec>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Registers a symmetric link between `a` and `b`.
    pub fn connect(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) {
        self.links.insert((a, b), spec);
        self.links.insert((b, a), spec);
    }

    /// Registers a one-direction link from `a` to `b` only.
    pub fn connect_directed(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) {
        self.links.insert((a, b), spec);
    }

    /// Looks up the link from `a` to `b`.
    pub fn link(&self, a: NodeId, b: NodeId) -> Option<&LinkSpec> {
        self.links.get(&(a, b))
    }

    /// Number of directed link entries.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether no links are registered.
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }
}

/// Serializes arrivals on each directed link.
///
/// A link is a serial resource: two messages sent `src → dst` can never
/// *arrive* in the same nanosecond. Continuous (exponential) jitter makes
/// exact nanosecond collisions rare, but each one is a same-timestamp tie
/// at the receiver, and same-node ties couple the receiver's RNG stream to
/// dispatch order (see the `determinism` module docs) — exactly the class
/// of divergence the schedule-perturbation detector flags. Same-pair
/// collisions dominate in practice because a node's batched sends (one
/// callback fanning several messages down one link) share send instant,
/// size-quantized transfer time and jitter distribution. Reserving arrival
/// slots per directed pair and bumping an exact collision to the next free
/// nanosecond removes that tie source at the wire, while leaving every
/// collision-free run bit-identical to the unserialized schedule.
#[derive(Debug, Default)]
pub(crate) struct LinkSerializer {
    /// Pending arrival times per directed pair. Entries at or before the
    /// sender's clock have been delivered and are pruned on reservation;
    /// links have positive delay, so a new arrival never lands in the past.
    inflight: HashMap<(NodeId, NodeId), Vec<SimTime>>,
}

impl LinkSerializer {
    /// Reserves the arrival slot for a message on `src → dst` computed to
    /// land at `at`, bumping past any in-flight arrival already occupying
    /// that nanosecond. `now` is the sender's clock at send time.
    pub(crate) fn reserve(
        &mut self,
        src: NodeId,
        dst: NodeId,
        now: SimTime,
        at: SimTime,
    ) -> SimTime {
        let slots = self.inflight.entry((src, dst)).or_default();
        slots.retain(|&t| t > now);
        let mut at = at;
        while slots.contains(&at) {
            at += SimDuration::from_nanos(1);
        }
        slots.push(at);
        at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from(1)
    }

    #[test]
    fn serializer_bumps_only_exact_collisions() {
        let mut s = LinkSerializer::default();
        let (a, b) = (NodeId::from_raw(1), NodeId::from_raw(2));
        let now = SimTime::from_nanos(100);
        assert_eq!(
            s.reserve(a, b, now, SimTime::from_nanos(500)).as_nanos(),
            500
        );
        // Exact collision bumps to the next free nanosecond — chained when
        // that slot is taken too.
        assert_eq!(
            s.reserve(a, b, now, SimTime::from_nanos(500)).as_nanos(),
            501
        );
        assert_eq!(
            s.reserve(a, b, now, SimTime::from_nanos(500)).as_nanos(),
            502
        );
        // Distinct times pass through untouched, even between collisions.
        assert_eq!(
            s.reserve(a, b, now, SimTime::from_nanos(499)).as_nanos(),
            499
        );
        // The reverse direction and other pairs are independent resources.
        assert_eq!(
            s.reserve(b, a, now, SimTime::from_nanos(500)).as_nanos(),
            500
        );
        // Delivered arrivals free their slots: advancing the clock past the
        // reservations lets the nanosecond be reused.
        let later = SimTime::from_nanos(1_000);
        assert_eq!(
            s.reserve(a, b, later, SimTime::from_nanos(1_500))
                .as_nanos(),
            1_500
        );
        assert_eq!(s.inflight[&(a, b)].len(), 1);
    }

    #[test]
    fn propagation_scales_with_hops() {
        let l = LinkSpec::new(7, SimDuration::from_millis(1));
        assert_eq!(l.propagation_owd(), SimDuration::from_millis(7));
        assert_eq!(l.nominal_rtt(), SimDuration::from_millis(14));
    }

    #[test]
    fn from_rtt_inverts_nominal_rtt() {
        let l = LinkSpec::from_rtt(7, SimDuration::from_millis(14));
        assert_eq!(l.nominal_rtt(), SimDuration::from_millis(14));
    }

    #[test]
    fn zero_hops_clamped_to_one() {
        let l = LinkSpec::new(0, SimDuration::from_millis(1));
        assert_eq!(l.hops(), 1);
    }

    #[test]
    fn transfer_time_uses_bandwidth() {
        let l = LinkSpec::new(1, SimDuration::ZERO).bandwidth_bytes_per_sec(1_000_000);
        assert_eq!(l.transfer_time(500_000), SimDuration::from_millis(500));
    }

    #[test]
    fn sampled_owd_includes_all_components() {
        let l = LinkSpec::new(2, SimDuration::from_millis(1)).bandwidth_bytes_per_sec(1_000_000);
        let mut r = rng();
        let owd = l.sample_owd(1_000, &mut r);
        // 2ms propagation + 1ms transfer, no jitter configured.
        assert_eq!(owd, SimDuration::from_millis(3));
    }

    #[test]
    fn jitter_adds_nonnegative_tail() {
        let l =
            LinkSpec::new(1, SimDuration::from_millis(1)).jitter_mean(SimDuration::from_millis(2));
        let mut r = rng();
        let base = SimDuration::from_millis(1);
        let mean: f64 = (0..5_000)
            .map(|_| (l.sample_owd(0, &mut r) - base).as_millis_f64())
            .sum::<f64>()
            / 5_000.0;
        assert!((mean - 2.0).abs() < 0.25, "jitter mean {mean}");
    }

    #[test]
    fn loss_probability_validated() {
        let l = LinkSpec::new(1, SimDuration::ZERO).loss_probability(0.5);
        let mut r = rng();
        let losses = (0..1_000).filter(|_| l.sample_loss(&mut r)).count();
        assert!((300..700).contains(&losses), "losses {losses}");
    }

    #[test]
    fn loss_probability_accepts_one_as_always_lossy() {
        let l = LinkSpec::new(1, SimDuration::ZERO).loss_probability(1.0);
        let mut r = rng();
        assert!((0..1_000).all(|_| l.sample_loss(&mut r)));
        // The other boundary stays lossless.
        let l = LinkSpec::new(1, SimDuration::ZERO).loss_probability(0.0);
        assert!((0..1_000).all(|_| !l.sample_loss(&mut r)));
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn loss_probability_rejects_above_one() {
        let _ = LinkSpec::new(1, SimDuration::ZERO).loss_probability(1.0 + f64::EPSILON);
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn loss_probability_rejects_nan() {
        let _ = LinkSpec::new(1, SimDuration::ZERO).loss_probability(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn bandwidth_rejects_zero() {
        let _ = LinkSpec::new(1, SimDuration::ZERO).bandwidth_bytes_per_sec(0);
    }

    #[test]
    fn topology_symmetric_connect() {
        let mut t = Topology::new();
        let a = NodeId::from_raw(0);
        let b = NodeId::from_raw(1);
        t.connect(a, b, LinkSpec::new(1, SimDuration::from_millis(1)));
        assert!(t.link(a, b).is_some());
        assert!(t.link(b, a).is_some());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn topology_directed_connect() {
        let mut t = Topology::new();
        let a = NodeId::from_raw(0);
        let b = NodeId::from_raw(1);
        t.connect_directed(a, b, LinkSpec::new(1, SimDuration::from_millis(1)));
        assert!(t.link(a, b).is_some());
        assert!(t.link(b, a).is_none());
        assert!(!t.is_empty());
    }
}
