//! Deterministic structured tracing: causal spans across message hops.
//!
//! A trace follows one logical operation (e.g. a client fetch) through the
//! simulated network. Nodes open *spans* — named intervals — inside the
//! current trace; the [`World`](crate::World) propagates the active span
//! context on every message and timer, so causality survives arbitrary
//! message hops without nodes threading ids by hand.
//!
//! Design constraints, in order:
//!
//! 1. **Deterministic.** Ids come from per-sink counters, timestamps from
//!    the virtual clock, and storage is an ordered ring buffer — a seeded
//!    run produces a byte-identical event log every time, on any thread.
//! 2. **Zero-cost when disabled.** With tracing off (the default),
//!    [`Context::begin_trace`](crate::Context::begin_trace) returns `None`,
//!    no span context is ever set, and the only residual work is copying a
//!    `None` per scheduled event.
//! 3. **Bounded.** The sink is a ring buffer: when full, the *oldest*
//!    events are dropped (and counted), so a long run degrades to "most
//!    recent window" rather than unbounded memory.

use std::collections::VecDeque;

use crate::node::NodeId;
use crate::time::SimTime;

/// Identifies one trace (one logical request) within a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifies one span within a run. Span ids are allocated from a single
/// per-sink counter, so they are unique across traces of the same run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl std::fmt::Display for SpanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The span context carried across message hops: which trace the current
/// causal chain belongs to and which span is currently active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanCtx {
    /// The trace this causal chain belongs to.
    pub trace: TraceId,
    /// The active span new child spans should parent to.
    pub span: SpanId,
}

/// Whether a trace event opens a span, closes one, or marks a point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// The span begins at `at`.
    Start,
    /// The span ends at `at`.
    End,
    /// A point-in-time marker inside the active span.
    Instant,
}

impl TracePhase {
    /// Stable lowercase label (used by exporters).
    pub fn as_str(&self) -> &'static str {
        match self {
            TracePhase::Start => "start",
            TracePhase::End => "end",
            TracePhase::Instant => "instant",
        }
    }
}

/// One recorded tracing event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Virtual time the event was recorded.
    pub at: SimTime,
    /// Trace the event belongs to.
    pub trace: TraceId,
    /// Span the event belongs to.
    pub span: SpanId,
    /// Parent span (set on `Start` events of child spans).
    pub parent: Option<SpanId>,
    /// Node whose callback recorded the event.
    pub node: NodeId,
    /// Span kind, e.g. `"fetch"` or `"wan.fetch"`. Static so recording
    /// never allocates; the vocabulary lives in the protocol crate.
    pub kind: &'static str,
    /// Start / end / instant.
    pub phase: TracePhase,
}

/// Tracing knobs: off by default, bounded buffer, optional sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch. When false the sink records nothing and
    /// `begin_trace` always returns `None`.
    pub enabled: bool,
    /// Ring-buffer capacity in events; the oldest events are dropped (and
    /// counted) once the buffer is full.
    pub capacity: usize,
    /// Record every `sample_every`-th trace (1 = every trace). Sampling is
    /// counter-based, hence deterministic. Values of 0 are treated as 1.
    pub sample_every: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            capacity: 1 << 16,
            sample_every: 1,
        }
    }
}

impl TraceConfig {
    /// An enabled config with default capacity and no sampling.
    pub fn enabled() -> Self {
        TraceConfig {
            enabled: true,
            ..TraceConfig::default()
        }
    }
}

/// Per-node id/sampling state used by the node-keyed id mode (sharded
/// execution), where ids must not depend on global dispatch interleaving.
#[derive(Debug, Clone, Copy, Default)]
struct NodeTraceState {
    candidates: u64,
    next_trace: u32,
    next_span: u32,
}

/// The global dispatch-order key a sharded run stamps on every recorded
/// event, so per-shard buffers can be merged into one canonical stream:
/// `(at, key)` is the executor's total order and `intra` the record index
/// within one dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub(crate) struct TraceStamp {
    /// Virtual time of the dispatch that recorded the event (nanoseconds).
    pub at: u64,
    /// Tie-break key of the dispatched event (canonical, perturbed form).
    pub key: u64,
    /// Record index within the dispatch.
    pub intra: u32,
}

/// Ring-buffered store of [`TraceEvent`]s, owned by the
/// [`World`](crate::World).
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    config: TraceConfig,
    events: VecDeque<TraceEvent>,
    dropped: u64,
    /// Traces requested via `try_begin_trace` (sampled or not).
    candidates: u64,
    next_trace: u64,
    next_span: u64,
    /// Node-keyed id mode (sharded execution): ids and sampling counters
    /// derive from the *recording node* instead of sink-global counters,
    /// so they are identical at any shard count; every recorded event also
    /// carries a [`TraceStamp`] for canonical cross-shard merging.
    node_mode: bool,
    per_node: std::collections::BTreeMap<u32, NodeTraceState>,
    stamps: VecDeque<TraceStamp>,
    cur_stamp: TraceStamp,
}

impl TraceSink {
    /// Creates a sink with the given configuration.
    pub fn new(config: TraceConfig) -> Self {
        TraceSink {
            config,
            ..TraceSink::default()
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Replaces the configuration. Intended for use before a run starts;
    /// shrinking the capacity mid-run drops the oldest buffered events.
    pub fn set_config(&mut self, config: TraceConfig) {
        self.config = config;
        while self.events.len() > self.config.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
    }

    /// Whether events are currently being recorded.
    pub fn is_enabled(&self) -> bool {
        self.config.enabled
    }

    /// Switches the sink to node-keyed ids and dispatch-order stamps (see
    /// [`TraceStamp`]). Sharded executor only; must be set before anything
    /// is recorded.
    pub(crate) fn enable_node_ids(&mut self) {
        assert!(
            self.events.is_empty() && self.candidates == 0,
            "enable_node_ids must precede any recording"
        );
        self.node_mode = true;
    }

    /// Sets the dispatch-order stamp subsequent pushes are tagged with
    /// (node-keyed mode only). Called by the sharded executor before every
    /// node callback.
    pub(crate) fn set_dispatch_stamp(&mut self, at: SimTime, key: u64) {
        self.cur_stamp = TraceStamp {
            at: at.as_nanos(),
            key,
            intra: 0,
        };
    }

    /// Allocates a new trace id if tracing is enabled and this candidate
    /// falls on the sampling grid; `None` otherwise. `node` is the
    /// recording node: in node-keyed mode ids and sampling counters are
    /// per-node (`node_raw << 32 | counter`), in the default mode it is
    /// ignored and sink-global counters apply.
    pub fn try_begin_trace(&mut self, node: NodeId) -> Option<TraceId> {
        if !self.config.enabled {
            return None;
        }
        let every = self.config.sample_every.max(1);
        if self.node_mode {
            let state = self.per_node.entry(node.as_raw()).or_default();
            let candidate = state.candidates;
            state.candidates += 1;
            if !candidate.is_multiple_of(every) {
                return None;
            }
            let id = TraceId((node.as_raw() as u64) << 32 | state.next_trace as u64);
            state.next_trace += 1;
            return Some(id);
        }
        let candidate = self.candidates;
        self.candidates += 1;
        if !candidate.is_multiple_of(every) {
            return None;
        }
        let id = TraceId(self.next_trace);
        self.next_trace += 1;
        Some(id)
    }

    /// Allocates the next span id (unique within the run). In node-keyed
    /// mode the id is `node_raw << 32 | counter`; otherwise `node` is
    /// ignored and a sink-global counter applies.
    pub fn next_span_id(&mut self, node: NodeId) -> SpanId {
        if self.node_mode {
            let state = self.per_node.entry(node.as_raw()).or_default();
            let id = SpanId((node.as_raw() as u64) << 32 | state.next_span as u64);
            state.next_span += 1;
            return id;
        }
        let id = SpanId(self.next_span);
        self.next_span += 1;
        id
    }

    /// Appends an event, evicting the oldest if the buffer is full.
    pub fn push(&mut self, event: TraceEvent) {
        if !self.config.enabled {
            return;
        }
        if self.config.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() >= self.config.capacity {
            self.events.pop_front();
            self.dropped += 1;
            if self.node_mode {
                self.stamps.pop_front();
            }
        }
        if self.node_mode {
            let stamp = self.cur_stamp;
            self.cur_stamp.intra += 1;
            self.stamps.push_back(stamp);
        }
        self.events.push_back(event);
    }

    /// Buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the ring filled up (or capacity was 0).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Traces begun (post-sampling) so far.
    pub fn traces_started(&self) -> u64 {
        if self.node_mode {
            return self
                .per_node
                .values()
                .map(|s| s.next_trace as u64)
                .sum::<u64>();
        }
        self.next_trace
    }

    /// Removes and returns all buffered events, oldest first.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        self.stamps.clear();
        self.events.drain(..).collect()
    }

    /// Removes and returns all buffered events paired with their dispatch
    /// stamps (node-keyed mode only), oldest first. The sharded executor
    /// k-way-merges these by stamp into the canonical global stream.
    pub(crate) fn drain_stamped(&mut self) -> Vec<(TraceStamp, TraceEvent)> {
        debug_assert!(self.node_mode, "drain_stamped requires node-keyed mode");
        debug_assert_eq!(self.stamps.len(), self.events.len());
        self.stamps.drain(..).zip(self.events.drain(..)).collect()
    }

    /// Non-destructive view of the buffered events paired with their
    /// dispatch stamps (node-keyed mode only), oldest first. Feeds the
    /// sharded world's merged trace digest.
    pub(crate) fn stamped_events(&self) -> impl Iterator<Item = (&TraceStamp, &TraceEvent)> {
        debug_assert!(self.node_mode, "stamped_events requires node-keyed mode");
        self.stamps.iter().zip(self.events.iter())
    }

    /// Order-insensitive fold of the sink's bookkeeping counters —
    /// `(dropped, candidates, traces started, spans allocated)` — summing
    /// per-node state in node-keyed mode. Feeds the sharded world's merged
    /// trace digest.
    pub(crate) fn counters_fold(&self) -> (u64, u64, u64, u64) {
        if self.node_mode {
            let (mut cand, mut traces, mut spans) = (0u64, 0u64, 0u64);
            for s in self.per_node.values() {
                cand += s.candidates;
                traces += s.next_trace as u64;
                spans += s.next_span as u64;
            }
            return (self.dropped, cand, traces, spans);
        }
        (
            self.dropped,
            self.candidates,
            self.next_trace,
            self.next_span,
        )
    }

    /// Stable 64-bit digest of the buffered event log (order-sensitive)
    /// plus the drop/candidate counters, used by the schedule-perturbation
    /// race detector to compare runs. Returns 0 when the sink has never
    /// recorded anything, so untraced runs compare trivially equal.
    pub fn digest(&self) -> u64 {
        if self.events.is_empty() && self.dropped == 0 && self.candidates == 0 {
            return 0;
        }
        let mut h = crate::determinism::Fnv64::new();
        h.write_u64(self.dropped);
        h.write_u64(self.candidates);
        h.write_u64(self.next_trace);
        h.write_u64(self.next_span);
        for e in &self.events {
            h.write_u64(e.at.as_nanos());
            h.write_u64(e.trace.0);
            h.write_u64(e.span.0);
            h.write_u64(e.parent.map_or(u64::MAX, |p| p.0));
            h.write_u64(e.node.index() as u64);
            h.write(e.kind.as_bytes());
            h.write(e.phase.as_str().as_bytes());
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(span: u64) -> TraceEvent {
        TraceEvent {
            at: SimTime::ZERO,
            trace: TraceId(0),
            span: SpanId(span),
            parent: None,
            node: NodeId::from_raw(0),
            kind: "test",
            phase: TracePhase::Instant,
        }
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let mut sink = TraceSink::new(TraceConfig::default());
        assert!(!sink.is_enabled());
        assert_eq!(sink.try_begin_trace(NodeId::from_raw(0)), None);
        sink.push(event(1));
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn trace_and_span_ids_are_sequential() {
        let mut sink = TraceSink::new(TraceConfig::enabled());
        assert_eq!(sink.try_begin_trace(NodeId::from_raw(0)), Some(TraceId(0)));
        assert_eq!(sink.try_begin_trace(NodeId::from_raw(7)), Some(TraceId(1)));
        assert_eq!(sink.next_span_id(NodeId::from_raw(0)), SpanId(0));
        assert_eq!(sink.next_span_id(NodeId::from_raw(7)), SpanId(1));
        assert_eq!(sink.traces_started(), 2);
    }

    #[test]
    fn sampling_keeps_every_nth_trace() {
        let mut sink = TraceSink::new(TraceConfig {
            enabled: true,
            sample_every: 3,
            ..TraceConfig::default()
        });
        let kept: Vec<bool> = (0..9)
            .map(|_| sink.try_begin_trace(NodeId::from_raw(0)).is_some())
            .collect();
        assert_eq!(
            kept,
            vec![true, false, false, true, false, false, true, false, false]
        );
        assert_eq!(sink.traces_started(), 3);
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut sink = TraceSink::new(TraceConfig {
            enabled: true,
            capacity: 3,
            sample_every: 1,
        });
        for i in 0..5 {
            sink.push(event(i));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        let spans: Vec<u64> = sink.events().map(|e| e.span.0).collect();
        assert_eq!(spans, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_counts_everything_as_dropped() {
        let mut sink = TraceSink::new(TraceConfig {
            enabled: true,
            capacity: 0,
            sample_every: 1,
        });
        sink.push(event(1));
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 1);
    }

    #[test]
    fn drain_empties_the_buffer() {
        let mut sink = TraceSink::new(TraceConfig::enabled());
        sink.push(event(1));
        sink.push(event(2));
        let drained = sink.drain();
        assert_eq!(drained.len(), 2);
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn shrinking_capacity_evicts() {
        let mut sink = TraceSink::new(TraceConfig::enabled());
        for i in 0..10 {
            sink.push(event(i));
        }
        sink.set_config(TraceConfig {
            enabled: true,
            capacity: 4,
            sample_every: 1,
        });
        assert_eq!(sink.len(), 4);
        assert_eq!(sink.dropped(), 6);
    }

    #[test]
    fn phase_labels_are_stable() {
        assert_eq!(TracePhase::Start.as_str(), "start");
        assert_eq!(TracePhase::End.as_str(), "end");
        assert_eq!(TracePhase::Instant.as_str(), "instant");
    }
}
