//! Measurement collection for simulation runs.
//!
//! Nodes record observations into a [`Metrics`] registry owned by the
//! [`World`](crate::World). After a run completes, experiment harnesses read
//! counters, latency histograms and resource time series out of the registry
//! to produce the paper's tables and figures.
//!
//! ## Fixed-memory mode
//!
//! The registry has two operating points, selected by [`MetricsConfig`]
//! before a run records anything:
//!
//! * **Exact-compat** (default): histograms store every sample in a
//!   `Vec<f64>` and series grow unbounded — bitwise identical behavior to
//!   the seed registry, which every committed artifact and fingerprint
//!   pins.
//! * **Sketch**: histograms become fixed-size log-bucketed sketches
//!   (HDR-style — see [`Histogram`]) and series are bounded by
//!   deterministic decimation, so memory is O(1) per metric no matter how
//!   many observations arrive. The frozen seed histogram lives on as
//!   [`crate::reference::ExactHistogram`] and can shadow every live sketch
//!   as a differential oracle ([`MetricsConfig::sketch_oracle`]).
//!
//! Independently of the mode, hot-path recording is allocation-free when
//! callers use interned [`MetricId`]s ([`Metrics::incr_id`],
//! [`Metrics::observe_id`], [`Metrics::record_point_id`]): ids index
//! straight into slot vectors, skipping both the string hash and the
//! `String` key allocation. The string API remains for dynamic names and
//! is itself allocation-free on the existing-key path.

use std::collections::BTreeMap;
use std::fmt;
// Metrics can time their own recording cost for the sim-loop self-profiler
// (`World::enable_profiler`); host time never feeds back into sim state.
use std::time::Instant;

use crate::reference::ExactHistogram;
use crate::time::SimTime;

/// Metric names owned by the simulator itself.
///
/// Application-level names (`ap.*`, `client.*`, `edge.*`) live with the
/// protocol crate (`ape_proto::names`), which re-exports these network
/// constants so harness code can import every key from one module.
pub mod keys {
    /// Messages that entered the network (sent or injected).
    pub const NET_MESSAGES: &str = "net.messages";
    /// Total wire bytes that entered the network.
    pub const NET_BYTES: &str = "net.bytes";
    /// Messages dropped by link loss.
    pub const NET_DROPPED: &str = "net.dropped";
    /// Messages dropped by an injected fault window (link-down or loss
    /// burst from a [`FaultPlan`](crate::FaultPlan)); disjoint from
    /// [`NET_DROPPED`] so experiments can tell scheduled faults from
    /// steady-state radio loss.
    pub const NET_FAULT_DROPPED: &str = "net.fault_dropped";

    /// Interned [`MetricId`](crate::MetricId)s for the simulator's own
    /// metric names, used by the `World` send path so per-message
    /// accounting allocates nothing.
    ///
    /// Indices 0..[`FIRST_FREE_INDEX`](id::FIRST_FREE_INDEX) are reserved
    /// here; `ape_proto::names::id` continues the same index space for
    /// application-level names. Every registry shares one space, so a
    /// given index must mean the same name everywhere (enforced by a
    /// debug assertion on slot access and the uniqueness tests in both
    /// crates).
    pub mod id {
        use crate::metrics::MetricId;

        /// Interned [`NET_MESSAGES`](super::NET_MESSAGES).
        pub const NET_MESSAGES: MetricId = MetricId::new(0, super::NET_MESSAGES);
        /// Interned [`NET_BYTES`](super::NET_BYTES).
        pub const NET_BYTES: MetricId = MetricId::new(1, super::NET_BYTES);
        /// Interned [`NET_DROPPED`](super::NET_DROPPED).
        pub const NET_DROPPED: MetricId = MetricId::new(2, super::NET_DROPPED);
        /// Interned [`NET_FAULT_DROPPED`](super::NET_FAULT_DROPPED).
        pub const NET_FAULT_DROPPED: MetricId = MetricId::new(3, super::NET_FAULT_DROPPED);
        /// First slot index not claimed by the simulator; downstream
        /// registries (`ape_proto::names::id`) start here.
        pub const FIRST_FREE_INDEX: u16 = 4;
    }
}

/// An interned metric name: a compile-time `(slot index, name)` pair.
///
/// Recording through an id ([`Metrics::incr_id`] and friends) indexes a
/// slot vector directly instead of hashing and possibly allocating a
/// `String` key, which is what makes the hot path allocation-free. Ids are
/// declared as `const`s next to the name constants they intern
/// ([`keys::id`] here, `ape_proto::names::id` for application names); the
/// index space is global across the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MetricId {
    index: u16,
    name: &'static str,
}

impl MetricId {
    /// Creates an id binding `index` to `name`. Callers must keep the
    /// index unique across the workspace-wide registry (see [`keys::id`]).
    pub const fn new(index: u16, name: &'static str) -> Self {
        MetricId { index, name }
    }

    /// The slot index.
    pub const fn index(self) -> usize {
        self.index as usize
    }

    /// The interned name.
    pub const fn name(self) -> &'static str {
        self.name
    }
}

/// How [`Metrics`] stores histogram observations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum HistogramMode {
    /// Seed behavior: every sample stored exactly in a `Vec<f64>`.
    /// Unbounded memory, exact quantiles, bitwise identical to the
    /// registry every committed artifact was produced with.
    #[default]
    ExactCompat,
    /// Fixed-memory log-bucketed sketch (see [`Histogram`] for the bucket
    /// layout and error bound). O(1) memory per histogram.
    Sketch,
}

/// Registry-wide configuration, applied via [`Metrics::set_config`] (or
/// [`World::set_metrics_config`](crate::World::set_metrics_config)) before
/// anything is recorded.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsConfig {
    /// Histogram storage mode for histograms the registry creates.
    pub histogram_mode: HistogramMode,
    /// In [`HistogramMode::Sketch`], shadow every live sketch with a
    /// frozen [`ExactHistogram`] and assert each quantile query against it
    /// (the PR 4/6 live-oracle pattern). Costs the exact histogram's
    /// memory again — for differential testing, not production runs.
    pub sketch_oracle: bool,
    /// Soft bound on stored points per [`TimeSeries`]; `0` (default) keeps
    /// every point (seed behavior). When set, a series that exceeds the
    /// bound is decimated deterministically (every other interior point
    /// dropped, endpoints kept), halving its resolution; aggregate queries
    /// (`mean`, `time_weighted_mean`, `max`) are maintained incrementally
    /// over *all* recorded points and stay exact regardless.
    pub series_capacity: usize,
}

// ---------------------------------------------------------------------------
// Sketch bucket layout.
//
// Observations are latencies in milliseconds (and other non-negative
// meters), so the layout spends its precision where the paper's claims
// live — sub-millisecond:
//
//   * linear region: 1024 buckets of width 1/1024 covering [0, 1);
//     absolute error <= 1/2048 per bucket midpoint.
//   * log region: for v >= 1, bucket = (exponent, top 6 mantissa bits),
//     i.e. 64 sub-buckets per power of two, exponents 0..=40 (values up
//     to 2^41 ~ 2.2e12 ms; larger values clamp into the top bucket).
//     Relative error <= 1/128 < 1% per bucket midpoint.
//
// Bucketing is pure integer bit math on the IEEE-754 representation — no
// `ln()`/`log2()` on the hot path, and bucket indices are deterministic
// bitwise functions of the sample.
// ---------------------------------------------------------------------------

const LINEAR_BUCKETS: usize = 1024;
const SUB_BUCKETS: usize = 64;
const MAX_EXPONENT: usize = 40;
const LOG_BUCKETS: usize = (MAX_EXPONENT + 1) * SUB_BUCKETS;
const SKETCH_BUCKETS: usize = LINEAR_BUCKETS + LOG_BUCKETS;

/// Bucket index for a finite sample. Negative values clamp into bucket 0
/// (the registry's producers record non-negative meters; `min`/`max`/`sum`
/// still track the true values).
fn sketch_bucket(value: f64) -> usize {
    let v = if value > 0.0 { value } else { 0.0 };
    if v < 1.0 {
        // v * 1024 < 1024, so the floor is always a valid linear index.
        (v * LINEAR_BUCKETS as f64) as usize
    } else {
        let bits = v.to_bits();
        let e = ((bits >> 52) & 0x7ff) as usize - 1023;
        let sub = ((bits >> 46) & 0x3f) as usize;
        let log_index = if e > MAX_EXPONENT {
            LOG_BUCKETS - 1
        } else {
            e * SUB_BUCKETS + sub
        };
        LINEAR_BUCKETS + log_index
    }
}

/// Midpoint representative of a bucket, the value quantile queries report
/// (clamped to the exact observed `[min, max]` by the caller).
fn sketch_representative(index: usize) -> f64 {
    if index < LINEAR_BUCKETS {
        (index as f64 + 0.5) / LINEAR_BUCKETS as f64
    } else {
        let li = index - LINEAR_BUCKETS;
        let e = (li / SUB_BUCKETS) as u64;
        let sub = (li % SUB_BUCKETS) as f64;
        // 2^e via exponent-field construction: deterministic bit math, no
        // powi in sight.
        let scale = f64::from_bits((e + 1023) << 52);
        (1.0 + (sub + 0.5) / SUB_BUCKETS as f64) * scale
    }
}

/// Fixed bucket array of a sketch histogram. Debug output summarizes
/// occupancy instead of dumping 3648 counters into assertion messages.
#[derive(Clone, PartialEq)]
struct SketchBuckets(Box<[u64; SKETCH_BUCKETS]>);

impl SketchBuckets {
    fn new() -> Self {
        SketchBuckets(Box::new([0u64; SKETCH_BUCKETS]))
    }
}

impl fmt::Debug for SketchBuckets {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let occupied = self.0.iter().filter(|&&c| c != 0).count();
        write!(f, "SketchBuckets({occupied}/{SKETCH_BUCKETS} occupied)")
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Repr {
    Exact { samples: Vec<f64>, sorted: bool },
    Sketch { buckets: SketchBuckets },
}

/// A set of latency samples with percentile queries.
///
/// Two storage modes (see [`HistogramMode`]):
///
/// * **Exact** ([`Histogram::new`], the default): samples stored exactly
///   in a `Vec<f64>`, quantiles by lazy sort + nearest rank — the seed
///   behavior, bitwise-pinned by committed artifacts.
/// * **Sketch** ([`Histogram::new_sketch`]): a fixed array of 3648
///   buckets — 1024 linear buckets over `[0, 1)` (absolute error
///   ≤ 1/2048) plus 64 log sub-buckets per power of two up to 2^41
///   (relative error ≤ 1/128 < 1%). Memory is constant no matter how
///   many samples arrive, and merge/digest are order-independent by
///   construction.
///
/// In both modes `count`/`sum`/`min`/`max` are maintained incrementally
/// on `record`/`merge` (O(1) queries, no O(n) scans), and the sums are
/// bitwise identical to the seed's insertion-order `iter().sum()` folds.
///
/// # Examples
///
/// ```
/// use ape_simnet::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     h.record(v);
/// }
/// assert_eq!(h.mean(), 2.5);
/// assert_eq!(h.percentile(50.0), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    repr: Repr,
    count: u64,
    /// Incremental sum. Starts at `-0.0` so the accumulation is bitwise
    /// identical to `iter().sum::<f64>()`, which folds from `-0.0`.
    sum: f64,
    lo: f64,
    hi: f64,
    /// Non-finite observations rejected by [`record`](Self::record).
    dropped: u64,
    /// Live differential oracle ([`MetricsConfig::sketch_oracle`]):
    /// mirrors every record/merge and asserts on quantile queries.
    oracle: Option<Box<ExactHistogram>>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty exact histogram (seed-compatible storage).
    pub fn new() -> Self {
        Histogram {
            repr: Repr::Exact {
                samples: Vec::new(),
                sorted: false,
            },
            count: 0,
            sum: -0.0,
            lo: f64::INFINITY,
            hi: f64::NEG_INFINITY,
            dropped: 0,
            oracle: None,
        }
    }

    /// Creates an empty fixed-memory sketch histogram. With `oracle` set,
    /// a frozen [`ExactHistogram`] shadows every observation and each
    /// quantile query is asserted against it (differential testing only —
    /// the oracle re-introduces the exact histogram's memory cost).
    pub fn new_sketch(oracle: bool) -> Self {
        Histogram {
            repr: Repr::Sketch {
                buckets: SketchBuckets::new(),
            },
            count: 0,
            sum: -0.0,
            lo: f64::INFINITY,
            hi: f64::NEG_INFINITY,
            dropped: 0,
            oracle: oracle.then(|| Box::new(ExactHistogram::new())),
        }
    }

    /// Whether this histogram uses the fixed-memory sketch representation.
    pub fn is_sketch(&self) -> bool {
        matches!(self.repr, Repr::Sketch { .. })
    }

    /// Records one observation.
    ///
    /// A non-finite value is a bug in the producer (latencies and meter
    /// readings are always finite): debug builds panic on one, release
    /// builds drop it and count it in
    /// [`dropped_samples`](Self::dropped_samples) so the corruption stays
    /// visible instead of poisoning [`quantile`](Self::quantile).
    pub fn record(&mut self, value: f64) {
        if value.is_finite() {
            self.count += 1;
            self.sum += value;
            self.lo = self.lo.min(value);
            self.hi = self.hi.max(value);
            match &mut self.repr {
                Repr::Exact { samples, sorted } => {
                    samples.push(value);
                    *sorted = false;
                }
                Repr::Sketch { buckets } => buckets.0[sketch_bucket(value)] += 1,
            }
        } else {
            debug_assert!(false, "non-finite histogram sample: {value}");
            self.dropped += 1;
        }
        if let Some(oracle) = &mut self.oracle {
            oracle.record(value);
        }
    }

    /// Number of non-finite observations rejected by
    /// [`record`](Self::record) (release builds only; debug builds panic
    /// at the offending `record` call instead).
    pub fn dropped_samples(&self) -> u64 {
        self.dropped
    }

    /// Number of recorded observations.
    pub fn count(&self) -> usize {
        self.count as usize
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean, or 0.0 when empty. O(1): the sum is maintained
    /// incrementally and matches the seed's query-time fold bitwise.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation, or 0.0 when empty. O(1).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.lo
        }
    }

    /// Largest observation, or 0.0 when empty. O(1).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.hi
        }
    }

    /// Sum of all observations, or 0.0 when empty — bitwise identical to
    /// the seed's insertion-order `iter().sum::<f64>()` fold. O(1).
    pub fn sum(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum
        }
    }

    /// The `p`-th percentile (nearest-rank), `p` in `[0, 100]`.
    ///
    /// Returns 0.0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        self.quantile(p / 100.0)
    }

    /// The `q`-quantile (nearest-rank), `q` in `[0, 1]`.
    ///
    /// Returns 0.0 when empty. Exact histograms sort lazily and answer
    /// exactly; sketches walk the bucket array and answer the bucket
    /// midpoint clamped to the observed `[min, max]` (relative error ≤ 1%
    /// in the log region, absolute error ≤ 1/2048 below 1.0). With a live
    /// oracle attached, the sketch answer is asserted against the exact
    /// one on every call.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`, or if an attached oracle detects
    /// divergence beyond the error bound.
    pub fn quantile(&mut self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.count == 0 {
            return 0.0;
        }
        let result = if let Repr::Exact { samples, sorted } = &mut self.repr {
            if !*sorted {
                // `total_cmp` is a total order on f64, so sorting cannot
                // panic even if a non-finite sample ever slipped in.
                samples.sort_by(f64::total_cmp);
                *sorted = true;
            }
            let n = samples.len();
            let rank = (q * n as f64).ceil() as usize;
            samples[rank.clamp(1, n) - 1]
        } else {
            self.sketch_quantile(q)
        };
        if let Some(oracle) = &mut self.oracle {
            let exact = oracle.quantile(q);
            let tol = (0.01 * exact.abs()).max(1.0 / LINEAR_BUCKETS as f64) + 1e-9;
            assert!(
                (result - exact).abs() <= tol,
                "sketch quantile diverged from exact oracle: \
                 q={q} sketch={result} exact={exact} tol={tol}"
            );
        }
        result
    }

    /// Non-mutating quantile: identical answer to [`quantile`]
    /// (Self::quantile) but leaves lazy-sort state and the oracle
    /// untouched (exact unsorted histograms sort a copy). Used by
    /// `Display` and other `&self` readers; prefer `quantile` on hot
    /// query paths.
    pub fn quantile_snapshot(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.count == 0 {
            return 0.0;
        }
        match &self.repr {
            Repr::Exact { samples, sorted } => {
                let n = samples.len();
                let rank = (q * n as f64).ceil() as usize;
                let idx = rank.clamp(1, n) - 1;
                if *sorted {
                    samples[idx]
                } else {
                    let mut copy = samples.clone();
                    copy.sort_by(f64::total_cmp);
                    copy[idx]
                }
            }
            Repr::Sketch { .. } => self.sketch_quantile(q),
        }
    }

    fn sketch_quantile(&self, q: f64) -> f64 {
        let Repr::Sketch { buckets } = &self.repr else {
            unreachable!("sketch_quantile on exact histogram");
        };
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in buckets.0.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            if cum >= rank {
                // The rank-th smallest sample landed in this bucket; its
                // midpoint is within the error bound, and clamping to the
                // exact observed extremes can only move it closer.
                return sketch_representative(i).clamp(self.lo, self.hi);
            }
        }
        self.hi
    }

    /// Median (50th percentile).
    pub fn p50(&mut self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&mut self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&mut self) -> f64 {
        self.quantile(0.99)
    }

    /// All recorded samples, in insertion or sorted order. Exact
    /// histograms only: a sketch does not retain samples and returns the
    /// empty slice.
    pub fn samples(&self) -> &[f64] {
        match &self.repr {
            Repr::Exact { samples, .. } => samples,
            Repr::Sketch { .. } => &[],
        }
    }

    /// Merges another histogram's samples (and dropped-sample count) into
    /// this one.
    ///
    /// Exact absorbs exact (sample vectors concatenate, sums fold in the
    /// other's insertion order so the result is bitwise identical to
    /// recording the pooled sequence); sketch absorbs sketch (bucket
    /// arrays add element-wise — order-independent) and exact (samples
    /// replayed through the bucketing).
    ///
    /// # Panics
    ///
    /// Panics when an exact histogram is asked to absorb a sketch: the
    /// sketch no longer has the samples an exact merge is defined over.
    /// Registries that merge (trial pooling) must share a
    /// [`HistogramMode`].
    pub fn merge(&mut self, other: &Histogram) {
        match (&mut self.repr, &other.repr) {
            (Repr::Exact { samples, sorted }, Repr::Exact { samples: os, .. }) => {
                samples.extend_from_slice(os);
                *sorted = false;
            }
            (Repr::Sketch { buckets }, Repr::Sketch { buckets: ob }) => {
                for (d, s) in buckets.0.iter_mut().zip(ob.0.iter()) {
                    *d += s;
                }
            }
            (Repr::Sketch { buckets }, Repr::Exact { samples: os, .. }) => {
                for &s in os.iter() {
                    buckets.0[sketch_bucket(s)] += 1;
                }
            }
            (Repr::Exact { .. }, Repr::Sketch { .. }) => panic!(
                "cannot merge a sketch histogram into an exact histogram \
                 (sketches do not retain samples); configure both registries \
                 with the same HistogramMode"
            ),
        }
        if let (Repr::Exact { .. }, Repr::Exact { samples: os, .. }) = (&self.repr, &other.repr) {
            for &s in os.iter() {
                self.sum += s;
            }
        } else {
            self.sum += other.sum;
        }
        self.count += other.count;
        self.dropped += other.dropped;
        self.lo = self.lo.min(other.lo);
        self.hi = self.hi.max(other.hi);
        let drop_oracle = match (&mut self.oracle, &other.oracle) {
            (Some(mine), Some(theirs)) => {
                mine.merge(theirs);
                false
            }
            (Some(mine), None) => {
                if let Repr::Exact { samples, .. } = &other.repr {
                    // An oracle-less exact source still has its samples;
                    // replay them so the oracle keeps tracking. (Its
                    // dropped count may lag — it only gates quantiles.)
                    for &s in samples.iter() {
                        mine.record(s);
                    }
                    false
                } else {
                    // An oracle-less sketch source cannot be reconstructed;
                    // drop the oracle rather than assert against a
                    // histogram it no longer mirrors.
                    true
                }
            }
            (None, _) => false,
        };
        if drop_oracle {
            self.oracle = None;
        }
    }

    /// Order-independent fold over the histogram's content for
    /// [`Metrics::digest`]. Exact histograms fold sample bit patterns
    /// (the seed digest, byte for byte); sketches fold occupied
    /// `(bucket, count)` pairs plus totals — deterministic and invariant
    /// under tie-perturbation because bucket indices are bitwise functions
    /// of the samples.
    fn sample_fold(&self) -> u64 {
        use crate::rng::mix64;
        match &self.repr {
            Repr::Exact { samples, .. } => {
                let mut fold = 0u64;
                for s in samples {
                    fold = fold.wrapping_add(mix64(s.to_bits()));
                }
                fold
            }
            Repr::Sketch { buckets } => {
                let mut fold = 0u64;
                for (i, &c) in buckets.0.iter().enumerate() {
                    if c != 0 {
                        fold = fold.wrapping_add(mix64(mix64(i as u64).wrapping_add(c)));
                    }
                }
                fold = fold.wrapping_add(mix64(self.count));
                fold.wrapping_add(mix64(!self.dropped))
            }
        }
    }

    /// Approximate heap footprint in bytes (sample buffer or bucket
    /// array, plus any attached oracle) — the `bench-metrics` memory
    /// column.
    pub fn approx_bytes(&self) -> usize {
        let repr = match &self.repr {
            Repr::Exact { samples, .. } => samples.capacity() * std::mem::size_of::<f64>(),
            Repr::Sketch { .. } => SKETCH_BUCKETS * std::mem::size_of::<u64>(),
        };
        repr + self.oracle.as_ref().map_or(0, |o| o.approx_bytes())
    }
}

/// A time series of `(time, value)` points, e.g. CPU utilization samples.
///
/// Aggregates (`mean`, `time_weighted_mean`, `max`) are maintained
/// incrementally over every recorded point, bitwise identical to the
/// seed's query-time folds. With a capacity bound
/// ([`MetricsConfig::series_capacity`]), stored points are decimated
/// deterministically once the bound is exceeded — resolution halves, but
/// the aggregates keep integrating the full-resolution stream exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
    /// Soft bound on stored points; 0 = unbounded (seed behavior).
    capacity: usize,
    /// Points ever recorded (>= `points.len()` once decimation kicks in).
    recorded: u64,
    /// Incremental value sum; starts at `-0.0` to match `Sum for f64`.
    sum: f64,
    vmax: f64,
    /// Trapezoidal integral accumulators (see `time_weighted_mean`).
    area: f64,
    span: f64,
    last: Option<(SimTime, f64)>,
}

impl Default for TimeSeries {
    fn default() -> Self {
        TimeSeries::new()
    }
}

impl TimeSeries {
    /// Creates an empty, unbounded series.
    pub fn new() -> Self {
        TimeSeries::with_capacity(0)
    }

    /// Creates an empty series keeping at most ~`capacity` points
    /// (`0` = unbounded). Bounds below 2 are treated as 2: decimation
    /// always keeps both endpoints.
    pub fn with_capacity(capacity: usize) -> Self {
        TimeSeries {
            points: Vec::new(),
            capacity,
            recorded: 0,
            sum: -0.0,
            vmax: f64::NEG_INFINITY,
            area: 0.0,
            span: 0.0,
            last: None,
        }
    }

    /// Appends a point. Points should be appended in time order.
    pub fn record(&mut self, at: SimTime, value: f64) {
        // Incremental trapezoid: one segment per consecutive pair, in the
        // exact order and arithmetic of the seed's `windows(2)` fold.
        // Segments whose time does not advance (duplicate timestamps, or
        // the backward jump where one trial's series was appended after
        // another's via `Metrics::merge`) contribute nothing.
        if let Some((lt, lv)) = self.last {
            if at > lt {
                let dt = at.saturating_since(lt).as_secs_f64();
                self.area += 0.5 * (lv + value) * dt;
                self.span += dt;
            }
        }
        self.last = Some((at, value));
        self.recorded += 1;
        self.sum += value;
        self.vmax = self.vmax.max(value);
        self.points.push((at, value));
        if self.capacity > 0 && self.points.len() > self.capacity.max(2) {
            self.decimate();
        }
    }

    /// Halves stored resolution: keeps even-indexed points plus the final
    /// one. Deterministic in the insertion sequence alone.
    fn decimate(&mut self) {
        let n = self.points.len();
        let mut w = 0;
        for r in 0..n {
            if r % 2 == 0 || r == n - 1 {
                self.points[w] = self.points[r];
                w += 1;
            }
        }
        self.points.truncate(w);
    }

    /// All stored points (the full record, unless a capacity bound forced
    /// decimation).
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Number of points ever recorded (ignores decimation).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.recorded == 0
    }

    /// Mean of the values, or 0.0 when empty. O(1), over every recorded
    /// point (decimation does not skew it).
    pub fn mean(&self) -> f64 {
        if self.recorded == 0 {
            0.0
        } else {
            self.sum / self.recorded as f64
        }
    }

    /// Time-weighted (trapezoidal) mean of the values, or the point mean
    /// when fewer than two points span a positive interval.
    ///
    /// Unlike [`TimeSeries::mean`], which weights every sample equally
    /// regardless of spacing, this integrates the piecewise-linear curve
    /// through the points and divides by the covered time span — the right
    /// notion of "average CPU/memory" when sampling is uneven. The
    /// integral accumulates incrementally at `record` time over the
    /// full-resolution stream, so it is exact even after decimation.
    pub fn time_weighted_mean(&self) -> f64 {
        if self.span > 0.0 {
            self.area / self.span
        } else {
            self.mean()
        }
    }

    /// Maximum value, or 0.0 when empty. O(1), over every recorded point.
    pub fn max(&self) -> f64 {
        if self.recorded == 0 {
            0.0
        } else {
            self.vmax
        }
    }

    /// Approximate heap footprint of the stored points in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.points.capacity() * std::mem::size_of::<(SimTime, f64)>()
    }
}

/// Host-time self-accounting for the registry (the sim-loop profiler's
/// `metrics.record` category). Off by default: every hook is one branch.
#[derive(Debug, Clone, Default)]
struct SelfProfile {
    enabled: bool,
    nanos: u64,
    calls: u64,
}

impl SelfProfile {
    #[inline]
    fn start(&self) -> Option<Instant> {
        if self.enabled {
            // ape-lint: allow(wall-clock) -- measures the metrics plane's own host-CPU cost; the reading is reported, never fed back into simulated state
            Some(Instant::now())
        } else {
            None
        }
    }

    #[inline]
    fn stop(&mut self, started: Option<Instant>) {
        if let Some(t) = started {
            self.nanos += u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.calls += 1;
        }
    }
}

/// An interned metric's storage: the id's name plus its value.
#[derive(Debug, Clone)]
struct Slot<T> {
    name: &'static str,
    value: T,
}

/// Central metric registry for a simulation run.
///
/// Metrics are keyed by string names; harnesses use stable, documented
/// names such as `"client.lookup_latency_ms"`. Names interned as
/// [`MetricId`]s additionally get a dedicated slot, making the `*_id`
/// recording paths allocation- and hash-free; a name lives in exactly one
/// place (string map or slot — first `*_id` use migrates it), and every
/// read API, the digest, `Display` and `merge` see the union.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    series: BTreeMap<String, TimeSeries>,
    counter_slots: Vec<Option<Slot<u64>>>,
    hist_slots: Vec<Option<Slot<Histogram>>>,
    series_slots: Vec<Option<Slot<TimeSeries>>>,
    config: MetricsConfig,
    profile: SelfProfile,
}

impl Metrics {
    /// Creates an empty registry with the default (exact-compat) config.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Sets the registry configuration. Must be called before anything is
    /// recorded: histograms and series capture their storage mode at
    /// creation.
    ///
    /// # Panics
    ///
    /// Panics if any metric has already been recorded.
    pub fn set_config(&mut self, config: MetricsConfig) {
        assert!(
            self.is_unused(),
            "metrics config must be set before any metric is recorded"
        );
        self.config = config;
    }

    /// The active configuration.
    pub fn config(&self) -> &MetricsConfig {
        &self.config
    }

    /// Whether nothing has been recorded yet.
    pub fn is_unused(&self) -> bool {
        self.counters.is_empty()
            && self.histograms.is_empty()
            && self.series.is_empty()
            && self.counter_slots.is_empty()
            && self.hist_slots.is_empty()
            && self.series_slots.is_empty()
    }

    /// Turns on self-profiling: recording paths accumulate their own host
    /// time for the sim-loop profiler's `metrics.record` row.
    pub fn enable_self_profile(&mut self) {
        self.profile.enabled = true;
    }

    /// Accumulated `(nanos, calls)` of self-profiled recording time.
    pub fn self_profile(&self) -> (u64, u64) {
        (self.profile.nanos, self.profile.calls)
    }

    fn histogram_for(config: &MetricsConfig) -> Histogram {
        match config.histogram_mode {
            HistogramMode::ExactCompat => Histogram::new(),
            HistogramMode::Sketch => Histogram::new_sketch(config.sketch_oracle),
        }
    }

    fn series_for(config: &MetricsConfig) -> TimeSeries {
        TimeSeries::with_capacity(config.series_capacity)
    }

    fn new_histogram(&self) -> Histogram {
        Metrics::histogram_for(&self.config)
    }

    fn new_series(&self) -> TimeSeries {
        Metrics::series_for(&self.config)
    }

    // --- counters ---------------------------------------------------------

    /// Adds `delta` to the named counter, creating it at zero first.
    /// Allocation-free when the counter already exists (borrowed lookup
    /// before any `to_owned`).
    pub fn incr(&mut self, name: &str, delta: u64) {
        let t = self.profile.start();
        if let Some(v) = self.counters.get_mut(name) {
            *v += delta;
        } else if let Some(slot) = self
            .counter_slots
            .iter_mut()
            .flatten()
            .find(|s| s.name == name)
        {
            slot.value += delta;
        } else {
            self.counters.insert(name.to_owned(), delta);
        }
        self.profile.stop(t);
    }

    /// Adds `delta` to the counter interned as `id`: a direct slot index,
    /// no hashing, no allocation.
    pub fn incr_id(&mut self, id: MetricId, delta: u64) {
        let t = self.profile.start();
        if let Some(Some(slot)) = self.counter_slots.get_mut(id.index()) {
            debug_assert_eq!(slot.name, id.name(), "metric id index collision");
            slot.value += delta;
        } else {
            self.register_counter(id.index(), id.name()).value += delta;
        }
        self.profile.stop(t);
    }

    #[cold]
    fn register_counter(&mut self, index: usize, name: &'static str) -> &mut Slot<u64> {
        if self.counter_slots.len() <= index {
            self.counter_slots.resize_with(index + 1, || None);
        }
        if self.counter_slots[index].is_none() {
            // Migrate any earlier string-API recording of the same name so
            // it never exists in both places.
            let migrated = self.counters.remove(name).unwrap_or(0);
            self.counter_slots[index] = Some(Slot {
                name,
                value: migrated,
            });
        }
        let slot = self.counter_slots[index].as_mut().expect("just ensured");
        debug_assert_eq!(slot.name, name, "metric id index collision");
        slot
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or_else(|| {
            self.counter_slots
                .iter()
                .flatten()
                .find(|s| s.name == name)
                .map_or(0, |s| s.value)
        })
    }

    /// Current value of an interned counter (0 if never incremented).
    pub fn counter_id(&self, id: MetricId) -> u64 {
        match self.counter_slots.get(id.index()) {
            Some(Some(slot)) => slot.value,
            _ => self.counters.get(id.name()).copied().unwrap_or(0),
        }
    }

    // --- histograms -------------------------------------------------------

    /// Records an observation into the named histogram. Allocation-free
    /// when the histogram already exists.
    pub fn observe(&mut self, name: &str, value: f64) {
        let t = self.profile.start();
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(value);
        } else if let Some(slot) = self
            .hist_slots
            .iter_mut()
            .flatten()
            .find(|s| s.name == name)
        {
            slot.value.record(value);
        } else {
            let mut h = self.new_histogram();
            h.record(value);
            self.histograms.insert(name.to_owned(), h);
        }
        self.profile.stop(t);
    }

    /// Records an observation into the histogram interned as `id`: a
    /// direct slot index, no hashing, no allocation.
    pub fn observe_id(&mut self, id: MetricId, value: f64) {
        let t = self.profile.start();
        if let Some(Some(slot)) = self.hist_slots.get_mut(id.index()) {
            debug_assert_eq!(slot.name, id.name(), "metric id index collision");
            slot.value.record(value);
        } else {
            self.register_histogram(id.index(), id.name())
                .value
                .record(value);
        }
        self.profile.stop(t);
    }

    #[cold]
    fn register_histogram(&mut self, index: usize, name: &'static str) -> &mut Slot<Histogram> {
        if self.hist_slots.len() <= index {
            self.hist_slots.resize_with(index + 1, || None);
        }
        if self.hist_slots[index].is_none() {
            let migrated = self.histograms.remove(name);
            let value = match migrated {
                Some(h) => h,
                None => self.new_histogram(),
            };
            self.hist_slots[index] = Some(Slot { name, value });
        }
        let slot = self.hist_slots[index].as_mut().expect("just ensured");
        debug_assert_eq!(slot.name, name, "metric id index collision");
        slot
    }

    /// Read access to a histogram, if it exists.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name).or_else(|| {
            self.hist_slots
                .iter()
                .flatten()
                .find(|s| s.name == name)
                .map(|s| &s.value)
        })
    }

    /// Read access to an interned histogram, if it exists.
    pub fn histogram_id(&self, id: MetricId) -> Option<&Histogram> {
        match self.hist_slots.get(id.index()) {
            Some(Some(slot)) => Some(&slot.value),
            _ => self.histograms.get(id.name()),
        }
    }

    /// Mutable access (needed for percentile queries, which sort lazily).
    pub fn histogram_mut(&mut self, name: &str) -> Option<&mut Histogram> {
        if self.histograms.contains_key(name) {
            return self.histograms.get_mut(name);
        }
        self.hist_slots
            .iter_mut()
            .flatten()
            .find(|s| s.name == name)
            .map(|s| &mut s.value)
    }

    /// Mean of a histogram, or 0.0 if absent.
    pub fn mean(&self, name: &str) -> f64 {
        self.histogram(name).map_or(0.0, Histogram::mean)
    }

    /// Percentile of a histogram, or 0.0 if absent.
    pub fn percentile(&mut self, name: &str, p: f64) -> f64 {
        self.histogram_mut(name).map_or(0.0, |h| h.percentile(p))
    }

    /// Quantile (`q` in `[0, 1]`) of a histogram, or 0.0 if absent.
    pub fn quantile(&mut self, name: &str, q: f64) -> f64 {
        self.histogram_mut(name).map_or(0.0, |h| h.quantile(q))
    }

    // --- time series ------------------------------------------------------

    /// Appends a point to the named time series. Allocation-free when the
    /// series already exists.
    pub fn record_point(&mut self, name: &str, at: SimTime, value: f64) {
        let t = self.profile.start();
        if let Some(s) = self.series.get_mut(name) {
            s.record(at, value);
        } else if let Some(slot) = self
            .series_slots
            .iter_mut()
            .flatten()
            .find(|s| s.name == name)
        {
            slot.value.record(at, value);
        } else {
            let mut s = self.new_series();
            s.record(at, value);
            self.series.insert(name.to_owned(), s);
        }
        self.profile.stop(t);
    }

    /// Appends a point to the series interned as `id`: a direct slot
    /// index, no hashing, no allocation.
    pub fn record_point_id(&mut self, id: MetricId, at: SimTime, value: f64) {
        let t = self.profile.start();
        if let Some(Some(slot)) = self.series_slots.get_mut(id.index()) {
            debug_assert_eq!(slot.name, id.name(), "metric id index collision");
            slot.value.record(at, value);
        } else {
            self.register_series(id.index(), id.name())
                .value
                .record(at, value);
        }
        self.profile.stop(t);
    }

    #[cold]
    fn register_series(&mut self, index: usize, name: &'static str) -> &mut Slot<TimeSeries> {
        if self.series_slots.len() <= index {
            self.series_slots.resize_with(index + 1, || None);
        }
        if self.series_slots[index].is_none() {
            let migrated = self.series.remove(name);
            let value = match migrated {
                Some(s) => s,
                None => self.new_series(),
            };
            self.series_slots[index] = Some(Slot { name, value });
        }
        let slot = self.series_slots[index].as_mut().expect("just ensured");
        debug_assert_eq!(slot.name, name, "metric id index collision");
        slot
    }

    /// Read access to a time series, if it exists.
    pub fn time_series(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name).or_else(|| {
            self.series_slots
                .iter()
                .flatten()
                .find(|s| s.name == name)
                .map(|s| &s.value)
        })
    }

    /// Read access to an interned time series, if it exists.
    pub fn time_series_id(&self, id: MetricId) -> Option<&TimeSeries> {
        match self.series_slots.get(id.index()) {
            Some(Some(slot)) => Some(&slot.value),
            _ => self.series.get(id.name()),
        }
    }

    // --- union views, digest, merge --------------------------------------

    fn sorted_counters(&self) -> Vec<(&str, u64)> {
        let mut out: Vec<(&str, u64)> = self
            .counters
            .iter()
            .map(|(k, v)| (k.as_str(), *v))
            .collect();
        out.extend(
            self.counter_slots
                .iter()
                .flatten()
                .map(|s| (s.name, s.value)),
        );
        out.sort_by(|a, b| a.0.cmp(b.0));
        out
    }

    fn sorted_histograms(&self) -> Vec<(&str, &Histogram)> {
        let mut out: Vec<(&str, &Histogram)> = self
            .histograms
            .iter()
            .map(|(k, v)| (k.as_str(), v))
            .collect();
        out.extend(self.hist_slots.iter().flatten().map(|s| (s.name, &s.value)));
        out.sort_by(|a, b| a.0.cmp(b.0));
        out
    }

    fn sorted_series(&self) -> Vec<(&str, &TimeSeries)> {
        let mut out: Vec<(&str, &TimeSeries)> =
            self.series.iter().map(|(k, v)| (k.as_str(), v)).collect();
        out.extend(
            self.series_slots
                .iter()
                .flatten()
                .map(|s| (s.name, &s.value)),
        );
        out.sort_by(|a, b| a.0.cmp(b.0));
        out
    }

    /// Names of all histograms currently registered, sorted.
    pub fn histogram_names(&self) -> impl Iterator<Item = &str> {
        self.sorted_histograms().into_iter().map(|(k, _)| k)
    }

    /// Names of all counters currently registered, sorted.
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.sorted_counters().into_iter().map(|(k, _)| k)
    }

    /// Stable 64-bit digest of the registry's full content, used by the
    /// schedule-perturbation race detector to compare runs.
    ///
    /// Counters and time series hash in key order; histogram content
    /// hashes as an order-independent fold (sample bit patterns for exact
    /// histograms — percentile queries sort lazily, and a digest must not
    /// change just because someone asked for a p99 first — and occupied
    /// bucket/count pairs for sketches). Interned and string-keyed
    /// metrics hash identically: the digest walks the sorted union, so
    /// adopting `MetricId`s does not move a single byte.
    pub fn digest(&self) -> u64 {
        use crate::determinism::Fnv64;
        let counters = self.sorted_counters();
        let histograms = self.sorted_histograms();
        let series = self.sorted_series();
        let mut h = Fnv64::new();
        h.write_u64(counters.len() as u64);
        for (k, v) in counters {
            h.write(k.as_bytes());
            h.write_u64(v);
        }
        h.write_u64(histograms.len() as u64);
        for (k, hist) in histograms {
            h.write(k.as_bytes());
            h.write_u64(hist.count() as u64);
            h.write_u64(hist.sample_fold());
        }
        h.write_u64(series.len() as u64);
        for (k, s) in series {
            h.write(k.as_bytes());
            for (t, v) in s.points() {
                h.write_u64(t.as_nanos());
                h.write_u64(v.to_bits());
            }
        }
        h.finish()
    }

    /// Merges another registry into this one (counters add, samples
    /// append). Interned metrics merge slot-to-slot by index; a metric
    /// that is interned on one side and string-keyed on the other lands
    /// in the interned slot.
    pub fn merge(&mut self, other: &Metrics) {
        for (i, slot) in other.counter_slots.iter().enumerate() {
            if let Some(s) = slot {
                self.register_counter(i, s.name).value += s.value;
            }
        }
        for (k, v) in &other.counters {
            if let Some(slot) = self
                .counter_slots
                .iter_mut()
                .flatten()
                .find(|s| s.name == k.as_str())
            {
                slot.value += v;
            } else {
                *self.counters.entry(k.clone()).or_insert(0) += v;
            }
        }
        for (i, slot) in other.hist_slots.iter().enumerate() {
            if let Some(s) = slot {
                self.register_histogram(i, s.name).value.merge(&s.value);
            }
        }
        for (k, h) in &other.histograms {
            if let Some(slot) = self
                .hist_slots
                .iter_mut()
                .flatten()
                .find(|s| s.name == k.as_str())
            {
                slot.value.merge(h);
            } else {
                let config = &self.config;
                self.histograms
                    .entry(k.clone())
                    .or_insert_with(|| Metrics::histogram_for(config))
                    .merge(h);
            }
        }
        for (i, slot) in other.series_slots.iter().enumerate() {
            if let Some(s) = slot {
                let dst = self.register_series(i, s.name);
                for (t, v) in s.value.points() {
                    dst.value.record(*t, *v);
                }
            }
        }
        for (k, s) in &other.series {
            if let Some(slot) = self
                .series_slots
                .iter_mut()
                .flatten()
                .find(|sl| sl.name == k.as_str())
            {
                for (t, v) in s.points() {
                    slot.value.record(*t, *v);
                }
            } else {
                let config = &self.config;
                let dst = self
                    .series
                    .entry(k.clone())
                    .or_insert_with(|| Metrics::series_for(config));
                for (t, v) in s.points() {
                    dst.record(*t, *v);
                }
            }
        }
    }

    /// Approximate heap footprint of the registry in bytes (keys, sample
    /// buffers or bucket arrays, series points) — the `bench-metrics`
    /// memory column.
    pub fn approx_bytes(&self) -> usize {
        let mut total = 0usize;
        for k in self.counters.keys() {
            total += k.capacity() + std::mem::size_of::<u64>();
        }
        for (k, h) in &self.histograms {
            total += k.capacity() + h.approx_bytes();
        }
        for (k, s) in &self.series {
            total += k.capacity() + s.approx_bytes();
        }
        total += self.counter_slots.capacity() * std::mem::size_of::<Option<Slot<u64>>>();
        total += self.hist_slots.capacity() * std::mem::size_of::<Option<Slot<()>>>();
        for s in self.hist_slots.iter().flatten() {
            total += s.value.approx_bytes();
        }
        total += self.series_slots.capacity() * std::mem::size_of::<Option<Slot<()>>>();
        for s in self.series_slots.iter().flatten() {
            total += s.value.approx_bytes();
        }
        total
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in self.sorted_counters() {
            writeln!(f, "counter {k} = {v}")?;
        }
        for (k, h) in self.sorted_histograms() {
            writeln!(
                f,
                "hist {k}: n={} mean={:.3} p50={:.3} p99={:.3} dropped={}",
                h.count(),
                h.mean(),
                h.quantile_snapshot(0.50),
                h.quantile_snapshot(0.99),
                h.dropped_samples()
            )?;
        }
        for (k, s) in self.sorted_series() {
            writeln!(f, "series {k}: n={} mean={:.3}", s.len(), s.mean())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch_config(oracle: bool) -> MetricsConfig {
        MetricsConfig {
            histogram_mode: HistogramMode::Sketch,
            sketch_oracle: oracle,
            series_capacity: 0,
        }
    }

    #[test]
    fn time_weighted_mean_weights_by_interval() {
        let mut s = TimeSeries::new();
        // 0.0 held for 9 s, then 1.0 for 1 s: point mean is ~0.5 but the
        // trapezoidal mean must reflect the long quiet stretch.
        s.record(SimTime::from_secs(0), 0.0);
        s.record(SimTime::from_secs(9), 0.0);
        s.record(SimTime::from_secs(10), 1.0);
        let tw = s.time_weighted_mean();
        assert!((tw - 0.05).abs() < 1e-12, "tw {tw}");
        assert!((s.mean() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_mean_degenerate_cases() {
        let empty = TimeSeries::new();
        assert_eq!(empty.time_weighted_mean(), 0.0);

        let mut single = TimeSeries::new();
        single.record(SimTime::from_secs(1), 4.0);
        assert_eq!(single.time_weighted_mean(), 4.0);

        // Duplicate timestamps span no time: falls back to the point mean.
        let mut dup = TimeSeries::new();
        dup.record(SimTime::from_secs(1), 2.0);
        dup.record(SimTime::from_secs(1), 6.0);
        assert_eq!(dup.time_weighted_mean(), 4.0);
    }

    #[test]
    fn time_weighted_mean_skips_backward_merge_seams() {
        // Two trials merged back-to-back: the seam (t jumps backward) must
        // not poison the integral.
        let mut s = TimeSeries::new();
        s.record(SimTime::from_secs(0), 2.0);
        s.record(SimTime::from_secs(10), 2.0);
        s.record(SimTime::from_secs(0), 4.0);
        s.record(SimTime::from_secs(10), 4.0);
        assert!((s.time_weighted_mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_percentiles_nearest_rank() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v as f64);
        }
        assert_eq!(h.percentile(50.0), 50.0);
        assert_eq!(h.percentile(95.0), 95.0);
        assert_eq!(h.percentile(100.0), 100.0);
        assert_eq!(h.percentile(0.0), 1.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-finite histogram sample")]
    fn histogram_panics_on_non_finite_in_debug() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn histogram_drops_and_counts_non_finite_in_release() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(2.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), 2.0);
        assert_eq!(h.dropped_samples(), 2);
        // The quantile path stays panic-free regardless.
        assert_eq!(h.p50(), 2.0);
        let mut merged = Histogram::new();
        merged.merge(&h);
        assert_eq!(merged.dropped_samples(), 2);
    }

    #[test]
    fn histogram_empty_is_zeroed() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(99.0), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.sum(), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn histogram_min_max_merge() {
        let mut a = Histogram::new();
        a.record(5.0);
        let mut b = Histogram::new();
        b.record(1.0);
        b.record(9.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.max(), 9.0);
        assert_eq!(a.sum(), 15.0);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_rejects_out_of_range() {
        let mut h = Histogram::new();
        h.record(1.0);
        h.percentile(101.0);
    }

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.incr("x", 2);
        m.incr("x", 3);
        assert_eq!(m.counter("x"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn registry_histograms_and_series() {
        let mut m = Metrics::new();
        m.observe("lat", 4.0);
        m.observe("lat", 6.0);
        assert_eq!(m.mean("lat"), 5.0);
        assert_eq!(m.percentile("lat", 100.0), 6.0);
        m.record_point("cpu", SimTime::from_secs(1), 0.25);
        assert_eq!(m.time_series("cpu").unwrap().len(), 1);
    }

    #[test]
    fn registry_merge_adds() {
        let mut a = Metrics::new();
        a.incr("c", 1);
        a.observe("h", 1.0);
        let mut b = Metrics::new();
        b.incr("c", 2);
        b.observe("h", 3.0);
        b.record_point("s", SimTime::ZERO, 1.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.time_series("s").unwrap().len(), 1);
    }

    #[test]
    fn quantile_matches_percentile_and_shortcuts() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v as f64);
        }
        assert_eq!(h.quantile(0.5), h.percentile(50.0));
        assert_eq!(h.p50(), 50.0);
        assert_eq!(h.p95(), 95.0);
        assert_eq!(h.p99(), 99.0);
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(1.0), 100.0);

        let mut m = Metrics::new();
        m.observe("lat", 1.0);
        m.observe("lat", 9.0);
        assert_eq!(m.quantile("lat", 0.5), 1.0);
        assert_eq!(m.quantile("missing", 0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_rejects_out_of_range() {
        let mut h = Histogram::new();
        h.record(1.0);
        h.quantile(1.5);
    }

    #[test]
    fn merge_empty_into_nonempty_is_identity() {
        let mut a = Metrics::new();
        a.incr("c", 7);
        a.observe("h", 1.0);
        a.record_point("s", SimTime::ZERO, 2.0);
        let before = format!("{a}");
        a.merge(&Metrics::new());
        assert_eq!(format!("{a}"), before);
    }

    #[test]
    fn merge_nonempty_into_empty_copies_everything() {
        let mut src = Metrics::new();
        src.incr("c", 7);
        src.observe("h", 1.0);
        src.observe("h", 3.0);
        src.record_point("s", SimTime::from_secs(1), 2.0);
        let mut dst = Metrics::new();
        dst.merge(&src);
        assert_eq!(dst.counter("c"), 7);
        assert_eq!(dst.histogram("h").unwrap().count(), 2);
        assert_eq!(dst.time_series("s").unwrap().len(), 1);
    }

    #[test]
    fn merge_disjoint_keys_unions() {
        let mut a = Metrics::new();
        a.incr("only.a", 1);
        a.observe("hist.a", 1.0);
        let mut b = Metrics::new();
        b.incr("only.b", 2);
        b.observe("hist.b", 5.0);
        a.merge(&b);
        assert_eq!(a.counter("only.a"), 1);
        assert_eq!(a.counter("only.b"), 2);
        assert_eq!(a.histogram("hist.a").unwrap().count(), 1);
        assert_eq!(a.histogram("hist.b").unwrap().count(), 1);
    }

    #[test]
    fn merged_histogram_quantiles_pool_samples() {
        // Samples are stored exactly, so a merge must behave as if both
        // sample sets were recorded into one histogram — no bucket
        // alignment error is possible by construction.
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut pooled = Histogram::new();
        for v in 1..=50 {
            a.record(v as f64);
            pooled.record(v as f64);
        }
        for v in 51..=100 {
            b.record(v as f64);
            pooled.record(v as f64);
        }
        // Sorting `a` first must not perturb the merge result.
        let _ = a.p50();
        a.merge(&b);
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(a.quantile(q).to_bits(), pooled.quantile(q).to_bits());
        }
        assert_eq!(a.count(), pooled.count());
        assert_eq!(a.mean().to_bits(), pooled.mean().to_bits());
    }

    #[test]
    fn net_keys_are_stable() {
        assert_eq!(keys::NET_MESSAGES, "net.messages");
        assert_eq!(keys::NET_BYTES, "net.bytes");
        assert_eq!(keys::NET_DROPPED, "net.dropped");
    }

    #[test]
    fn time_series_stats() {
        let mut s = TimeSeries::new();
        assert_eq!(s.mean(), 0.0);
        s.record(SimTime::ZERO, 2.0);
        s.record(SimTime::from_secs(1), 4.0);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.max(), 4.0);
        assert!(!s.is_empty());
    }

    #[test]
    fn display_lists_entries() {
        let mut m = Metrics::new();
        m.incr("c", 1);
        m.observe("h", 1.0);
        let text = format!("{m}");
        assert!(text.contains("counter c = 1"));
        assert!(text.contains("hist h"));
    }

    // --- fixed-memory plane ----------------------------------------------

    #[test]
    fn net_key_ids_intern_their_names() {
        assert_eq!(keys::id::NET_MESSAGES.name(), keys::NET_MESSAGES);
        assert_eq!(keys::id::NET_BYTES.name(), keys::NET_BYTES);
        assert_eq!(keys::id::NET_DROPPED.name(), keys::NET_DROPPED);
        assert_eq!(keys::id::NET_FAULT_DROPPED.name(), keys::NET_FAULT_DROPPED);
        let ids = [
            keys::id::NET_MESSAGES,
            keys::id::NET_BYTES,
            keys::id::NET_DROPPED,
            keys::id::NET_FAULT_DROPPED,
        ];
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.index(), i, "net ids must stay densely indexed");
            assert!(id.index() < keys::id::FIRST_FREE_INDEX as usize);
        }
    }

    #[test]
    fn interned_and_string_recording_share_one_metric() {
        let mut m = Metrics::new();
        m.incr(keys::NET_MESSAGES, 2);
        // First id use migrates the string entry into the slot...
        m.incr_id(keys::id::NET_MESSAGES, 3);
        // ...and later string-API calls find the slot, not a new map key.
        m.incr(keys::NET_MESSAGES, 5);
        assert_eq!(m.counter(keys::NET_MESSAGES), 10);
        assert_eq!(m.counter_id(keys::id::NET_MESSAGES), 10);
        assert_eq!(m.counter_names().count(), 1);

        m.observe(keys::NET_BYTES, 1.0);
        m.observe_id(keys::id::NET_BYTES, 3.0);
        m.observe(keys::NET_BYTES, 5.0);
        assert_eq!(m.histogram(keys::NET_BYTES).unwrap().count(), 3);
        assert_eq!(m.mean(keys::NET_BYTES), 3.0);
        assert_eq!(m.histogram_names().count(), 1);

        m.record_point(keys::NET_DROPPED, SimTime::ZERO, 1.0);
        m.record_point_id(keys::id::NET_DROPPED, SimTime::from_secs(1), 2.0);
        assert_eq!(m.time_series(keys::NET_DROPPED).unwrap().len(), 2);
        assert_eq!(m.time_series_id(keys::id::NET_DROPPED).unwrap().len(), 2);
    }

    #[test]
    fn interned_digest_matches_string_digest() {
        let mut by_str = Metrics::new();
        let mut by_id = Metrics::new();
        by_str.incr(keys::NET_MESSAGES, 7);
        by_id.incr_id(keys::id::NET_MESSAGES, 7);
        by_str.observe(keys::NET_BYTES, 64.0);
        by_id.observe_id(keys::id::NET_BYTES, 64.0);
        by_str.record_point(keys::NET_DROPPED, SimTime::from_secs(2), 1.5);
        by_id.record_point_id(keys::id::NET_DROPPED, SimTime::from_secs(2), 1.5);
        assert_eq!(by_str.digest(), by_id.digest());
        assert_eq!(format!("{by_str}"), format!("{by_id}"));
    }

    #[test]
    fn interned_registries_merge_by_slot() {
        let mut a = Metrics::new();
        a.incr_id(keys::id::NET_MESSAGES, 1);
        let mut b = Metrics::new();
        b.incr_id(keys::id::NET_MESSAGES, 2);
        b.incr(keys::NET_BYTES, 4); // string-keyed on the source side
        a.incr_id(keys::id::NET_BYTES, 8); // interned on the destination
        a.merge(&b);
        assert_eq!(a.counter_id(keys::id::NET_MESSAGES), 3);
        assert_eq!(a.counter_id(keys::id::NET_BYTES), 12);
        assert_eq!(a.counter_names().count(), 2);
    }

    #[test]
    fn sketch_quantiles_stay_within_error_bound() {
        let mut sketch = Histogram::new_sketch(false);
        let mut exact = ExactHistogram::new();
        // Mixed sub-millisecond and long-tail values.
        for i in 0..5000u64 {
            let v = (i as f64 * 0.731) % 900.0 + (i as f64) / 7000.0;
            sketch.record(v);
            exact.record(v);
        }
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let s = sketch.quantile(q);
            let e = exact.quantile(q);
            let tol = (0.01 * e.abs()).max(1.0 / 1024.0);
            assert!(
                (s - e).abs() <= tol,
                "q={q}: sketch {s} vs exact {e} (tol {tol})"
            );
        }
        assert_eq!(sketch.count(), exact.count());
        assert_eq!(sketch.min(), exact.min());
        assert_eq!(sketch.max(), exact.max());
        assert!((sketch.mean() - exact.mean()).abs() < 1e-9);
    }

    #[test]
    fn sketch_memory_is_constant() {
        let mut sketch = Histogram::new_sketch(false);
        let before = sketch.approx_bytes();
        for i in 0..100_000u64 {
            sketch.record(i as f64 * 0.01);
        }
        assert_eq!(sketch.approx_bytes(), before);
        assert_eq!(sketch.count(), 100_000);
        assert!(sketch.samples().is_empty(), "sketches retain no samples");
    }

    #[test]
    fn sketch_bucketing_is_monotone_across_the_linear_log_seam() {
        let mut prev = 0;
        for i in 0..100_000 {
            let v = i as f64 * 0.0005; // crosses 1.0 at i == 2000
            let b = sketch_bucket(v);
            assert!(b >= prev, "bucket order inverted at v={v}");
            prev = b;
        }
        // Representatives are monotone too, and clamping covers the ends.
        assert!(sketch_bucket(0.0) == 0);
        assert!(sketch_bucket(f64::MAX) == SKETCH_BUCKETS - 1);
        assert!(sketch_bucket(-5.0) == 0);
        let mut prev_rep = f64::NEG_INFINITY;
        for b in 0..SKETCH_BUCKETS {
            let r = sketch_representative(b);
            assert!(r > prev_rep, "representative order inverted at {b}");
            prev_rep = r;
        }
    }

    #[test]
    fn sketch_merge_is_order_independent_and_matches_pooling() {
        let mut a = Histogram::new_sketch(false);
        let mut b = Histogram::new_sketch(false);
        let mut pooled = Histogram::new_sketch(false);
        for i in 0..500u64 {
            let v = (i as f64).sqrt();
            a.record(v);
            pooled.record(v);
        }
        for i in 500..1000u64 {
            let v = (i as f64).sqrt();
            b.record(v);
            pooled.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(ab.quantile(q).to_bits(), pooled.quantile(q).to_bits());
            assert_eq!(ba.quantile(q).to_bits(), pooled.quantile(q).to_bits());
        }
        assert_eq!(ab.count(), pooled.count());
        // A sketch can also absorb an exact histogram by replaying samples.
        let mut exact_src = Histogram::new();
        exact_src.record(2.0);
        ab.merge(&exact_src);
        assert_eq!(ab.count(), 1001);
    }

    #[test]
    #[should_panic(expected = "cannot merge a sketch histogram into an exact histogram")]
    fn exact_histogram_rejects_sketch_merge() {
        let mut exact = Histogram::new();
        exact.record(1.0);
        let mut sketch = Histogram::new_sketch(false);
        sketch.record(2.0);
        exact.merge(&sketch);
    }

    #[test]
    fn sketch_digest_ignores_recording_order() {
        let mut forward = Metrics::new();
        forward.set_config(sketch_config(false));
        let mut reverse = Metrics::new();
        reverse.set_config(sketch_config(false));
        let values: Vec<f64> = (0..200).map(|i| (i as f64) * 0.37).collect();
        for v in &values {
            forward.observe("lat", *v);
        }
        for v in values.iter().rev() {
            reverse.observe("lat", *v);
        }
        assert_eq!(forward.digest(), reverse.digest());
    }

    #[test]
    fn sketch_config_applies_to_new_histograms_and_series() {
        let mut m = Metrics::new();
        m.set_config(MetricsConfig {
            histogram_mode: HistogramMode::Sketch,
            sketch_oracle: false,
            series_capacity: 8,
        });
        m.observe("lat", 1.0);
        assert!(m.histogram("lat").unwrap().is_sketch());
        for i in 0..100 {
            m.record_point("cpu", SimTime::from_secs(i), i as f64);
        }
        let s = m.time_series("cpu").unwrap();
        assert!(s.len() <= 9, "series not bounded: {}", s.len());
        assert_eq!(s.recorded(), 100);
    }

    #[test]
    #[should_panic(expected = "before any metric is recorded")]
    fn config_rejects_used_registry() {
        let mut m = Metrics::new();
        m.incr("c", 1);
        m.set_config(sketch_config(false));
    }

    #[test]
    fn sketch_oracle_validates_quantile_queries() {
        let mut m = Metrics::new();
        m.set_config(sketch_config(true));
        for i in 0..2000u64 {
            m.observe("lat", (i % 97) as f64 * 0.25);
        }
        // Each query runs the live differential assertion internally.
        let p50 = m.quantile("lat", 0.5);
        let p99 = m.quantile("lat", 0.99);
        assert!(p50 > 0.0 && p99 >= p50);
    }

    #[test]
    fn bounded_series_keeps_exact_aggregates() {
        let mut bounded = TimeSeries::with_capacity(16);
        let mut unbounded = TimeSeries::new();
        for i in 0..500u64 {
            let at = SimTime::from_millis(i * 10);
            let v = ((i * 37) % 100) as f64 / 10.0;
            bounded.record(at, v);
            unbounded.record(at, v);
        }
        assert!(bounded.len() <= 17, "len {}", bounded.len());
        assert_eq!(bounded.recorded(), 500);
        assert_eq!(bounded.mean().to_bits(), unbounded.mean().to_bits());
        assert_eq!(
            bounded.time_weighted_mean().to_bits(),
            unbounded.time_weighted_mean().to_bits()
        );
        assert_eq!(bounded.max().to_bits(), unbounded.max().to_bits());
        // Decimation keeps both endpoints.
        assert_eq!(bounded.points()[0].0, SimTime::ZERO);
        assert_eq!(
            bounded.points().last().unwrap().0,
            SimTime::from_millis(499 * 10)
        );
    }

    #[test]
    fn display_shows_quantiles_and_drops() {
        let mut m = Metrics::new();
        for v in 1..=100 {
            m.observe("h", v as f64);
        }
        let text = format!("{m}");
        assert!(text.contains("p50=50.000"), "display: {text}");
        assert!(text.contains("p99=99.000"), "display: {text}");
        assert!(text.contains("dropped=0"), "display: {text}");
        // Display must not disturb lazy-sort state or the digest.
        let before = m.digest();
        let _ = format!("{m}");
        assert_eq!(m.digest(), before);
    }

    #[test]
    fn self_profile_counts_recording_calls() {
        let mut m = Metrics::new();
        m.incr("c", 1); // before enabling: not counted
        m.enable_self_profile();
        m.incr("c", 1);
        m.incr_id(keys::id::NET_MESSAGES, 1);
        m.observe("h", 1.0);
        m.record_point("s", SimTime::ZERO, 1.0);
        let (_, calls) = m.self_profile();
        assert_eq!(calls, 4);
        let off = Metrics::new();
        assert_eq!(off.self_profile(), (0, 0));
    }

    #[test]
    fn incremental_sum_matches_iter_sum_bitwise() {
        // The seed computed histogram means as `iter().sum::<f64>() / n`
        // at query time; the incremental sum must reproduce those bits.
        let values: Vec<f64> = (0..1000).map(|i| (i as f64) * 0.1 + 0.0137).collect();
        let mut h = Histogram::new();
        for v in &values {
            h.record(*v);
        }
        let folded: f64 = values.iter().sum();
        assert_eq!(h.sum().to_bits(), folded.to_bits());
        assert_eq!(h.mean().to_bits(), (folded / values.len() as f64).to_bits());
    }
}
