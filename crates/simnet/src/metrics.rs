//! Measurement collection for simulation runs.
//!
//! Nodes record observations into a [`Metrics`] registry owned by the
//! [`World`](crate::World). After a run completes, experiment harnesses read
//! counters, latency histograms and resource time series out of the registry
//! to produce the paper's tables and figures.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::SimTime;

/// Metric names owned by the simulator itself.
///
/// Application-level names (`ap.*`, `client.*`, `edge.*`) live with the
/// protocol crate (`ape_proto::names`), which re-exports these network
/// constants so harness code can import every key from one module.
pub mod keys {
    /// Messages that entered the network (sent or injected).
    pub const NET_MESSAGES: &str = "net.messages";
    /// Total wire bytes that entered the network.
    pub const NET_BYTES: &str = "net.bytes";
    /// Messages dropped by link loss.
    pub const NET_DROPPED: &str = "net.dropped";
    /// Messages dropped by an injected fault window (link-down or loss
    /// burst from a [`FaultPlan`](crate::FaultPlan)); disjoint from
    /// [`NET_DROPPED`] so experiments can tell scheduled faults from
    /// steady-state radio loss.
    pub const NET_FAULT_DROPPED: &str = "net.fault_dropped";
}

/// A set of latency samples with percentile queries.
///
/// Samples are stored exactly (simulation scale keeps sample counts modest),
/// so `mean`/`percentile` are exact rather than bucketed approximations.
///
/// # Examples
///
/// ```
/// use ape_simnet::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     h.record(v);
/// }
/// assert_eq!(h.mean(), 2.5);
/// assert_eq!(h.percentile(50.0), 2.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
    /// Non-finite observations rejected by [`record`](Self::record).
    dropped: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    ///
    /// A non-finite value is a bug in the producer (latencies and meter
    /// readings are always finite): debug builds panic on one, release
    /// builds drop it and count it in
    /// [`dropped_samples`](Self::dropped_samples) so the corruption stays
    /// visible instead of poisoning [`quantile`](Self::quantile).
    pub fn record(&mut self, value: f64) {
        if value.is_finite() {
            self.samples.push(value);
            self.sorted = false;
        } else {
            debug_assert!(false, "non-finite histogram sample: {value}");
            self.dropped += 1;
        }
    }

    /// Number of non-finite observations rejected by
    /// [`record`](Self::record) (release builds only; debug builds panic
    /// at the offending `record` call instead).
    pub fn dropped_samples(&self) -> u64 {
        self.dropped
    }

    /// Number of recorded observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Smallest observation, or 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Largest observation, or 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// The `p`-th percentile (nearest-rank), `p` in `[0, 100]`.
    ///
    /// Returns 0.0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&mut self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        self.quantile(p / 100.0)
    }

    /// The `q`-quantile (nearest-rank), `q` in `[0, 1]`.
    ///
    /// Returns 0.0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            // `total_cmp` is a total order on f64, so sorting cannot panic
            // even if a non-finite sample ever slipped in. (`record`
            // rejects those, so in practice the order matches the old
            // `partial_cmp` sort exactly.)
            self.samples.sort_by(f64::total_cmp);
            self.sorted = true;
        }
        let n = self.samples.len();
        let rank = (q * n as f64).ceil() as usize;
        self.samples[rank.clamp(1, n) - 1]
    }

    /// Median (50th percentile).
    pub fn p50(&mut self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&mut self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&mut self) -> f64 {
        self.quantile(0.99)
    }

    /// All recorded samples, in insertion or sorted order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Merges another histogram's samples (and dropped-sample count) into
    /// this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
        self.dropped += other.dropped;
    }
}

/// A time series of `(time, value)` points, e.g. CPU utilization samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a point. Points should be appended in time order.
    pub fn record(&mut self, at: SimTime, value: f64) {
        self.points.push((at, value));
    }

    /// All recorded points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of the values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().map(|(_, v)| v).sum::<f64>() / self.points.len() as f64
        }
    }

    /// Time-weighted (trapezoidal) mean of the values, or the point mean
    /// when fewer than two points span a positive interval.
    ///
    /// Unlike [`TimeSeries::mean`], which weights every sample equally
    /// regardless of spacing, this integrates the piecewise-linear curve
    /// through the points and divides by the covered time span — the right
    /// notion of "average CPU/memory" when sampling is uneven. Segments
    /// whose time does not advance (duplicate timestamps, or the backward
    /// jump where one trial's series was appended after another's via
    /// [`Metrics::merge`]) contribute nothing and are skipped.
    pub fn time_weighted_mean(&self) -> f64 {
        let mut area = 0.0;
        let mut span = 0.0;
        for pair in self.points.windows(2) {
            let (t1, v1) = pair[0];
            let (t2, v2) = pair[1];
            if t2 > t1 {
                let dt = t2.saturating_since(t1).as_secs_f64();
                area += 0.5 * (v1 + v2) * dt;
                span += dt;
            }
        }
        if span > 0.0 {
            area / span
        } else {
            self.mean()
        }
    }

    /// Maximum value, or 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points
                .iter()
                .map(|(_, v)| *v)
                .fold(f64::NEG_INFINITY, f64::max)
        }
    }
}

/// Central metric registry for a simulation run.
///
/// Metrics are keyed by string names; harnesses use stable, documented names
/// such as `"client.lookup_latency_ms"`.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    series: BTreeMap<String, TimeSeries>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `delta` to the named counter, creating it at zero first.
    pub fn incr(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records an observation into the named histogram.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .record(value);
    }

    /// Read access to a histogram, if it exists.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Mutable access (needed for percentile queries, which sort lazily).
    pub fn histogram_mut(&mut self, name: &str) -> Option<&mut Histogram> {
        self.histograms.get_mut(name)
    }

    /// Mean of a histogram, or 0.0 if absent.
    pub fn mean(&self, name: &str) -> f64 {
        self.histograms.get(name).map_or(0.0, Histogram::mean)
    }

    /// Percentile of a histogram, or 0.0 if absent.
    pub fn percentile(&mut self, name: &str, p: f64) -> f64 {
        self.histograms
            .get_mut(name)
            .map_or(0.0, |h| h.percentile(p))
    }

    /// Quantile (`q` in `[0, 1]`) of a histogram, or 0.0 if absent.
    pub fn quantile(&mut self, name: &str, q: f64) -> f64 {
        self.histograms.get_mut(name).map_or(0.0, |h| h.quantile(q))
    }

    /// Appends a point to the named time series.
    pub fn record_point(&mut self, name: &str, at: SimTime, value: f64) {
        self.series
            .entry(name.to_owned())
            .or_default()
            .record(at, value);
    }

    /// Read access to a time series, if it exists.
    pub fn time_series(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// Names of all histograms currently registered.
    pub fn histogram_names(&self) -> impl Iterator<Item = &str> {
        self.histograms.keys().map(String::as_str)
    }

    /// Names of all counters currently registered.
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(String::as_str)
    }

    /// Stable 64-bit digest of the registry's full content, used by the
    /// schedule-perturbation race detector to compare runs.
    ///
    /// Counters and time series hash in key/insertion order. Histogram
    /// samples hash as an order-independent fold over their bit patterns:
    /// percentile queries sort the sample vector lazily, and a digest must
    /// not change just because someone asked for a p99 first.
    pub fn digest(&self) -> u64 {
        use crate::determinism::Fnv64;
        use crate::rng::mix64;
        let mut h = Fnv64::new();
        h.write_u64(self.counters.len() as u64);
        for (k, v) in &self.counters {
            h.write(k.as_bytes());
            h.write_u64(*v);
        }
        h.write_u64(self.histograms.len() as u64);
        for (k, hist) in &self.histograms {
            h.write(k.as_bytes());
            h.write_u64(hist.count() as u64);
            let mut fold = 0u64;
            for s in hist.samples() {
                fold = fold.wrapping_add(mix64(s.to_bits()));
            }
            h.write_u64(fold);
        }
        h.write_u64(self.series.len() as u64);
        for (k, s) in &self.series {
            h.write(k.as_bytes());
            for (t, v) in s.points() {
                h.write_u64(t.as_nanos());
                h.write_u64(v.to_bits());
            }
        }
        h.finish()
    }

    /// Merges another registry into this one (counters add, samples append).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
        for (k, s) in &other.series {
            let dst = self.series.entry(k.clone()).or_default();
            for (t, v) in s.points() {
                dst.record(*t, *v);
            }
        }
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "counter {k} = {v}")?;
        }
        for (k, h) in &self.histograms {
            writeln!(f, "hist {k}: n={} mean={:.3}", h.count(), h.mean())?;
        }
        for (k, s) in &self.series {
            writeln!(f, "series {k}: n={} mean={:.3}", s.len(), s.mean())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_weighted_mean_weights_by_interval() {
        let mut s = TimeSeries::new();
        // 0.0 held for 9 s, then 1.0 for 1 s: point mean is ~0.5 but the
        // trapezoidal mean must reflect the long quiet stretch.
        s.record(SimTime::from_secs(0), 0.0);
        s.record(SimTime::from_secs(9), 0.0);
        s.record(SimTime::from_secs(10), 1.0);
        let tw = s.time_weighted_mean();
        assert!((tw - 0.05).abs() < 1e-12, "tw {tw}");
        assert!((s.mean() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_mean_degenerate_cases() {
        let empty = TimeSeries::new();
        assert_eq!(empty.time_weighted_mean(), 0.0);

        let mut single = TimeSeries::new();
        single.record(SimTime::from_secs(1), 4.0);
        assert_eq!(single.time_weighted_mean(), 4.0);

        // Duplicate timestamps span no time: falls back to the point mean.
        let mut dup = TimeSeries::new();
        dup.record(SimTime::from_secs(1), 2.0);
        dup.record(SimTime::from_secs(1), 6.0);
        assert_eq!(dup.time_weighted_mean(), 4.0);
    }

    #[test]
    fn time_weighted_mean_skips_backward_merge_seams() {
        // Two trials merged back-to-back: the seam (t jumps backward) must
        // not poison the integral.
        let mut s = TimeSeries::new();
        s.record(SimTime::from_secs(0), 2.0);
        s.record(SimTime::from_secs(10), 2.0);
        s.record(SimTime::from_secs(0), 4.0);
        s.record(SimTime::from_secs(10), 4.0);
        assert!((s.time_weighted_mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_percentiles_nearest_rank() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v as f64);
        }
        assert_eq!(h.percentile(50.0), 50.0);
        assert_eq!(h.percentile(95.0), 95.0);
        assert_eq!(h.percentile(100.0), 100.0);
        assert_eq!(h.percentile(0.0), 1.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-finite histogram sample")]
    fn histogram_panics_on_non_finite_in_debug() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn histogram_drops_and_counts_non_finite_in_release() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(2.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean(), 2.0);
        assert_eq!(h.dropped_samples(), 2);
        // The quantile path stays panic-free regardless.
        assert_eq!(h.p50(), 2.0);
        let mut merged = Histogram::new();
        merged.merge(&h);
        assert_eq!(merged.dropped_samples(), 2);
    }

    #[test]
    fn histogram_empty_is_zeroed() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(99.0), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn histogram_min_max_merge() {
        let mut a = Histogram::new();
        a.record(5.0);
        let mut b = Histogram::new();
        b.record(1.0);
        b.record(9.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.max(), 9.0);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_rejects_out_of_range() {
        let mut h = Histogram::new();
        h.record(1.0);
        h.percentile(101.0);
    }

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.incr("x", 2);
        m.incr("x", 3);
        assert_eq!(m.counter("x"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn registry_histograms_and_series() {
        let mut m = Metrics::new();
        m.observe("lat", 4.0);
        m.observe("lat", 6.0);
        assert_eq!(m.mean("lat"), 5.0);
        assert_eq!(m.percentile("lat", 100.0), 6.0);
        m.record_point("cpu", SimTime::from_secs(1), 0.25);
        assert_eq!(m.time_series("cpu").unwrap().len(), 1);
    }

    #[test]
    fn registry_merge_adds() {
        let mut a = Metrics::new();
        a.incr("c", 1);
        a.observe("h", 1.0);
        let mut b = Metrics::new();
        b.incr("c", 2);
        b.observe("h", 3.0);
        b.record_point("s", SimTime::ZERO, 1.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.time_series("s").unwrap().len(), 1);
    }

    #[test]
    fn quantile_matches_percentile_and_shortcuts() {
        let mut h = Histogram::new();
        for v in 1..=100 {
            h.record(v as f64);
        }
        assert_eq!(h.quantile(0.5), h.percentile(50.0));
        assert_eq!(h.p50(), 50.0);
        assert_eq!(h.p95(), 95.0);
        assert_eq!(h.p99(), 99.0);
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(1.0), 100.0);

        let mut m = Metrics::new();
        m.observe("lat", 1.0);
        m.observe("lat", 9.0);
        assert_eq!(m.quantile("lat", 0.5), 1.0);
        assert_eq!(m.quantile("missing", 0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_rejects_out_of_range() {
        let mut h = Histogram::new();
        h.record(1.0);
        h.quantile(1.5);
    }

    #[test]
    fn merge_empty_into_nonempty_is_identity() {
        let mut a = Metrics::new();
        a.incr("c", 7);
        a.observe("h", 1.0);
        a.record_point("s", SimTime::ZERO, 2.0);
        let before = format!("{a}");
        a.merge(&Metrics::new());
        assert_eq!(format!("{a}"), before);
    }

    #[test]
    fn merge_nonempty_into_empty_copies_everything() {
        let mut src = Metrics::new();
        src.incr("c", 7);
        src.observe("h", 1.0);
        src.observe("h", 3.0);
        src.record_point("s", SimTime::from_secs(1), 2.0);
        let mut dst = Metrics::new();
        dst.merge(&src);
        assert_eq!(dst.counter("c"), 7);
        assert_eq!(dst.histogram("h").unwrap().count(), 2);
        assert_eq!(dst.time_series("s").unwrap().len(), 1);
    }

    #[test]
    fn merge_disjoint_keys_unions() {
        let mut a = Metrics::new();
        a.incr("only.a", 1);
        a.observe("hist.a", 1.0);
        let mut b = Metrics::new();
        b.incr("only.b", 2);
        b.observe("hist.b", 5.0);
        a.merge(&b);
        assert_eq!(a.counter("only.a"), 1);
        assert_eq!(a.counter("only.b"), 2);
        assert_eq!(a.histogram("hist.a").unwrap().count(), 1);
        assert_eq!(a.histogram("hist.b").unwrap().count(), 1);
    }

    #[test]
    fn merged_histogram_quantiles_pool_samples() {
        // Samples are stored exactly, so a merge must behave as if both
        // sample sets were recorded into one histogram — no bucket
        // alignment error is possible by construction.
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut pooled = Histogram::new();
        for v in 1..=50 {
            a.record(v as f64);
            pooled.record(v as f64);
        }
        for v in 51..=100 {
            b.record(v as f64);
            pooled.record(v as f64);
        }
        // Sorting `a` first must not perturb the merge result.
        let _ = a.p50();
        a.merge(&b);
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(a.quantile(q).to_bits(), pooled.quantile(q).to_bits());
        }
        assert_eq!(a.count(), pooled.count());
        assert_eq!(a.mean().to_bits(), pooled.mean().to_bits());
    }

    #[test]
    fn net_keys_are_stable() {
        assert_eq!(keys::NET_MESSAGES, "net.messages");
        assert_eq!(keys::NET_BYTES, "net.bytes");
        assert_eq!(keys::NET_DROPPED, "net.dropped");
    }

    #[test]
    fn time_series_stats() {
        let mut s = TimeSeries::new();
        assert_eq!(s.mean(), 0.0);
        s.record(SimTime::ZERO, 2.0);
        s.record(SimTime::from_secs(1), 4.0);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.max(), 4.0);
        assert!(!s.is_empty());
    }

    #[test]
    fn display_lists_entries() {
        let mut m = Metrics::new();
        m.incr("c", 1);
        m.observe("h", 1.0);
        let text = format!("{m}");
        assert!(text.contains("counter c = 1"));
        assert!(text.contains("hist h"));
    }
}
