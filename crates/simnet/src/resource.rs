//! CPU and memory accounting for simulated devices.
//!
//! The paper's feasibility study (Fig. 2) and overhead evaluation (Fig. 14)
//! measure CPU utilization and memory footprint of the WiFi AP. Simulated
//! nodes charge work against a [`CpuMeter`] and allocate against a
//! [`MemMeter`]; harnesses sample both into time series.

use crate::time::{SimDuration, SimTime};

/// Tracks how much of the wall clock a device's processor has spent busy.
///
/// Work is charged as busy intervals; utilization over a sampling window is
/// `busy_time_in_window / window`. A device with `cores > 1` can absorb that
/// many seconds of work per second before saturating.
#[derive(Debug, Clone)]
pub struct CpuMeter {
    cores: u32,
    /// Completed busy time since the last sample.
    busy_in_window: SimDuration,
    window_start: SimTime,
    /// Time until which the (single logical queue of the) processor is busy.
    busy_until: SimTime,
    total_busy: SimDuration,
}

impl CpuMeter {
    /// Creates a meter for a device with the given core count.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: u32) -> Self {
        assert!(cores > 0, "cores must be positive");
        CpuMeter {
            cores,
            busy_in_window: SimDuration::ZERO,
            window_start: SimTime::ZERO,
            busy_until: SimTime::ZERO,
            total_busy: SimDuration::ZERO,
        }
    }

    /// Charges `work` of CPU time beginning no earlier than `now`, modelling
    /// a FIFO service queue. Returns the time at which the work completes.
    pub fn charge(&mut self, now: SimTime, work: SimDuration) -> SimTime {
        let start = now.max(self.busy_until);
        // With multiple cores the same amount of work occupies the queue for
        // a proportionally shorter time.
        let occupancy = work / self.cores as u64;
        self.busy_until = start + occupancy;
        self.busy_in_window += work;
        self.total_busy += work;
        self.busy_until
    }

    /// Utilization in `[0, 1]` over the window since the last call, then
    /// resets the window. `now` must not precede the previous sample time.
    pub fn sample_utilization(&mut self, now: SimTime) -> f64 {
        let window = now - self.window_start;
        self.window_start = now;
        let busy = std::mem::replace(&mut self.busy_in_window, SimDuration::ZERO);
        if window.is_zero() {
            return 0.0;
        }
        (busy.as_secs_f64() / (window.as_secs_f64() * self.cores as f64)).min(1.0)
    }

    /// Total CPU time charged since creation.
    pub fn total_busy(&self) -> SimDuration {
        self.total_busy
    }

    /// Queueing delay a request arriving at `now` would experience before
    /// service begins.
    pub fn queue_delay(&self, now: SimTime) -> SimDuration {
        self.busy_until.saturating_since(now)
    }
}

/// Tracks current and peak memory use of a simulated device, in bytes.
#[derive(Debug, Clone, Default)]
pub struct MemMeter {
    current: u64,
    peak: u64,
}

impl MemMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        MemMeter::default()
    }

    /// Creates a meter with a fixed baseline allocation (OS, firmware, ...).
    pub fn with_baseline(baseline: u64) -> Self {
        MemMeter {
            current: baseline,
            peak: baseline,
        }
    }

    /// Allocates `bytes`.
    pub fn alloc(&mut self, bytes: u64) {
        self.current = self.current.saturating_add(bytes);
        self.peak = self.peak.max(self.current);
    }

    /// Frees `bytes`, saturating at zero.
    pub fn free(&mut self, bytes: u64) {
        self.current = self.current.saturating_sub(bytes);
    }

    /// Current allocation in bytes.
    pub fn current(&self) -> u64 {
        self.current
    }

    /// Current allocation in megabytes.
    pub fn current_mb(&self) -> f64 {
        self.current as f64 / 1_000_000.0
    }

    /// High-water mark in bytes.
    pub fn peak(&self) -> u64 {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_reflects_charged_work() {
        let mut cpu = CpuMeter::new(1);
        cpu.charge(SimTime::ZERO, SimDuration::from_millis(250));
        let u = cpu.sample_utilization(SimTime::from_secs(1));
        assert!((u - 0.25).abs() < 1e-9, "utilization {u}");
        // Window resets.
        let u2 = cpu.sample_utilization(SimTime::from_secs(2));
        assert_eq!(u2, 0.0);
    }

    #[test]
    fn multicore_divides_occupancy() {
        let mut cpu = CpuMeter::new(4);
        let done = cpu.charge(SimTime::ZERO, SimDuration::from_millis(400));
        assert_eq!(done, SimTime::from_millis(100));
        let u = cpu.sample_utilization(SimTime::from_secs(1));
        assert!((u - 0.1).abs() < 1e-9, "utilization {u}");
    }

    #[test]
    fn queueing_serializes_work() {
        let mut cpu = CpuMeter::new(1);
        let d1 = cpu.charge(SimTime::ZERO, SimDuration::from_millis(10));
        let d2 = cpu.charge(SimTime::ZERO, SimDuration::from_millis(10));
        assert_eq!(d1, SimTime::from_millis(10));
        assert_eq!(d2, SimTime::from_millis(20));
        assert_eq!(
            cpu.queue_delay(SimTime::from_millis(5)),
            SimDuration::from_millis(15)
        );
    }

    #[test]
    fn utilization_saturates_at_one() {
        let mut cpu = CpuMeter::new(1);
        cpu.charge(SimTime::ZERO, SimDuration::from_secs(10));
        assert_eq!(cpu.sample_utilization(SimTime::from_secs(1)), 1.0);
    }

    #[test]
    fn zero_window_is_zero_utilization() {
        let mut cpu = CpuMeter::new(1);
        assert_eq!(cpu.sample_utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "cores")]
    fn zero_cores_rejected() {
        let _ = CpuMeter::new(0);
    }

    #[test]
    fn memory_tracks_peak() {
        let mut mem = MemMeter::with_baseline(1_000_000);
        mem.alloc(2_000_000);
        mem.free(500_000);
        assert_eq!(mem.current(), 2_500_000);
        assert_eq!(mem.peak(), 3_000_000);
        assert!((mem.current_mb() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn memory_free_saturates() {
        let mut mem = MemMeter::new();
        mem.free(100);
        assert_eq!(mem.current(), 0);
    }

    #[test]
    fn total_busy_accumulates() {
        let mut cpu = CpuMeter::new(2);
        cpu.charge(SimTime::ZERO, SimDuration::from_millis(10));
        cpu.charge(SimTime::ZERO, SimDuration::from_millis(30));
        assert_eq!(cpu.total_busy(), SimDuration::from_millis(40));
    }
}
