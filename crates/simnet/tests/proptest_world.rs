//! Property tests of the discrete-event substrate: causality, determinism
//! and clock discipline must hold for arbitrary workloads.

use ape_simnet::{
    Context, LinkSpec, Message, Node, NodeId, SimDuration, SimTime, TimerToken, World,
};
use proptest::prelude::*;

#[derive(Debug, Clone, PartialEq)]
struct Tagged {
    hops_left: u8,
    payload: u64,
}

impl Message for Tagged {
    fn wire_size(&self) -> usize {
        32 + (self.payload % 512) as usize
    }
}

/// Records every receipt time and bounces messages until exhausted.
#[derive(Debug, Default)]
struct Recorder {
    receipts: Vec<(SimTime, u64)>,
    timer_fires: Vec<SimTime>,
}

impl Node<Tagged> for Recorder {
    fn on_message(&mut self, ctx: &mut Context<'_, Tagged>, from: NodeId, msg: Tagged) {
        self.receipts.push((ctx.now(), msg.payload));
        if msg.hops_left > 0 {
            ctx.send(
                from,
                Tagged {
                    hops_left: msg.hops_left - 1,
                    payload: msg.payload.wrapping_mul(31),
                },
            );
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Tagged>, _token: TimerToken) {
        self.timer_fires.push(ctx.now());
    }
}

#[derive(Debug, Clone)]
struct Workload {
    seed: u64,
    messages: Vec<(u8, u64)>,
    timers: Vec<u64>,
    link_us: u64,
    jitter_us: u64,
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    (
        any::<u64>(),
        proptest::collection::vec((0u8..6, any::<u64>()), 1..25),
        proptest::collection::vec(1u64..5_000_000, 0..10),
        100u64..5_000,
        0u64..1_000,
    )
        .prop_map(|(seed, messages, timers, link_us, jitter_us)| Workload {
            seed,
            messages,
            timers,
            link_us,
            jitter_us,
        })
}

fn run(w: &Workload) -> (Vec<(SimTime, u64)>, Vec<SimTime>, SimTime, u64) {
    let mut world = World::new(w.seed);
    let a = world.add_node("a", Recorder::default());
    let b = world.add_node("b", Recorder::default());
    world.connect(
        a,
        b,
        LinkSpec::new(1, SimDuration::from_micros(w.link_us))
            .jitter_mean(SimDuration::from_micros(w.jitter_us)),
    );
    for (hops, payload) in &w.messages {
        world.post(
            a,
            b,
            Tagged {
                hops_left: *hops,
                payload: *payload,
            },
        );
    }
    for (i, &delay) in w.timers.iter().enumerate() {
        world.schedule_timer(
            a,
            SimDuration::from_micros(delay),
            TimerToken::new(i as u64),
        );
    }
    let report = world.run_to_idle();
    let mut receipts = world.node::<Recorder>(a).receipts.clone();
    receipts.extend(world.node::<Recorder>(b).receipts.iter().copied());
    receipts.sort();
    let timer_fires = world.node::<Recorder>(a).timer_fires.clone();
    (receipts, timer_fires, world.now(), report.events)
}

proptest! {
    #[test]
    fn identical_workloads_replay_identically(w in arb_workload()) {
        let (r1, t1, now1, e1) = run(&w);
        let (r2, t2, now2, e2) = run(&w);
        prop_assert_eq!(r1, r2);
        prop_assert_eq!(t1, t2);
        prop_assert_eq!(now1, now2);
        prop_assert_eq!(e1, e2);
    }

    #[test]
    fn clock_never_runs_backwards(w in arb_workload()) {
        let (receipts, _, end, _) = run(&w);
        for pair in receipts.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0);
        }
        if let Some(last) = receipts.last() {
            prop_assert!(last.0 <= end);
        }
    }

    #[test]
    fn every_bounce_is_delivered(w in arb_workload()) {
        let (receipts, timers, _, events) = run(&w);
        // Each posted message with h hops produces h+1 receipts total.
        let expected: usize = w.messages.iter().map(|(h, _)| *h as usize + 1).sum();
        prop_assert_eq!(receipts.len(), expected);
        prop_assert_eq!(timers.len(), w.timers.len());
        // Event count = deliveries + timer fires.
        prop_assert_eq!(events as usize, expected + w.timers.len());
    }

    #[test]
    fn timers_fire_at_or_after_their_deadline(w in arb_workload()) {
        let (_, timer_fires, _, _) = run(&w);
        let mut sorted_delays = w.timers.clone();
        sorted_delays.sort();
        let mut fires = timer_fires.clone();
        fires.sort();
        for (fire, delay) in fires.iter().zip(sorted_delays.iter()) {
            prop_assert!(
                fire.as_nanos() >= delay * 1_000,
                "fired {fire} before {delay}us"
            );
        }
    }

    #[test]
    fn deadline_runs_split_cleanly(w in arb_workload(), split_us in 1u64..1_000_000) {
        // Running to a deadline and resuming must equal one uninterrupted run.
        let uninterrupted = run(&w);

        let mut world = World::new(w.seed);
        let a = world.add_node("a", Recorder::default());
        let b = world.add_node("b", Recorder::default());
        world.connect(
            a,
            b,
            LinkSpec::new(1, SimDuration::from_micros(w.link_us))
                .jitter_mean(SimDuration::from_micros(w.jitter_us)),
        );
        for (hops, payload) in &w.messages {
            world.post(a, b, Tagged { hops_left: *hops, payload: *payload });
        }
        for (i, &delay) in w.timers.iter().enumerate() {
            world.schedule_timer(a, SimDuration::from_micros(delay), TimerToken::new(i as u64));
        }
        world.run_until(SimTime::from_nanos(split_us * 1_000));
        world.run_to_idle();
        let mut receipts = world.node::<Recorder>(a).receipts.clone();
        receipts.extend(world.node::<Recorder>(b).receipts.iter().copied());
        receipts.sort();
        prop_assert_eq!(receipts, uninterrupted.0);
    }
}
