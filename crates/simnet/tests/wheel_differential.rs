//! Differential property suite for the timing-wheel scheduler.
//!
//! Randomized schedules — near/far timestamp mixes, tie bursts, pops
//! interleaved with pushes, and tie-break keys scrambled the way
//! `World::set_tie_perturbation` scrambles them — are replayed through
//! [`TimerWheel`] and the frozen pre-wheel heap
//! ([`ReferenceEventQueue`]). The two engines must agree on every single
//! `(at, seq, item)` triple they pop, for every interleaving.

use ape_simnet::reference::ReferenceEventQueue;
use ape_simnet::{SimTime, TimerWheel};
use proptest::prelude::*;
use proptest::TestCaseError;

/// The schedule-perturbation keys the determinism harness sweeps (see
/// `tests/determinism_perturbation.rs` at the repo root).
const PERTURBATION_KEYS: [u64; 4] = [
    0x9E37_79B9_7F4A_7C15,
    0xD1B5_4A32_D192_ED03,
    0xA5A5_A5A5_A5A5_A5A5,
    0x0123_4567_89AB_CDEF,
];

/// SplitMix64 finalizer — the same bijection the event queue applies to
/// tie-break sequence numbers under perturbation, replicated here because
/// the real one is crate-private. Bijectivity keeps scrambled keys unique.
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One randomized schedule: event classes plus raw entropy, a pop cadence,
/// and an optional perturbation key index.
#[derive(Debug, Clone)]
struct Sched {
    /// `(class, raw)` per event: class 0 re-uses the previous timestamp
    /// (tie burst), class 1 lands seconds-to-hours out (overflow and
    /// coarse-level territory), anything else lands within ~20 ms.
    events: Vec<(u8, u64)>,
    /// Pop (and cross-check) one event from both queues after every
    /// `pops_every` pushes; 0 disables interleaving.
    pops_every: u8,
    /// `Some(i)` scrambles sequence numbers with `PERTURBATION_KEYS[i]`.
    key: Option<u8>,
}

fn arb_sched() -> impl Strategy<Value = Sched> {
    (
        proptest::collection::vec((0u8..8, any::<u64>()), 1..250),
        0u8..5,
        proptest::option::of(0u8..4),
    )
        .prop_map(|(events, pops_every, key)| Sched {
            events,
            pops_every,
            key,
        })
}

/// Maps a `(class, raw)` pair onto a timestamp, given the previous one.
fn timestamp(class: u8, raw: u64, prev: SimTime) -> SimTime {
    match class {
        0 => prev,
        1 => SimTime::from_nanos(1_000_000_000 + raw % 7_200_000_000_000),
        _ => SimTime::from_nanos(raw % 20_000_000),
    }
}

/// Replays `sched` through both queues, asserting identical behavior at
/// every pop and peek.
fn check(sched: &Sched) -> Result<(), TestCaseError> {
    let mut wheel = TimerWheel::new();
    let mut heap = ReferenceEventQueue::new();
    let mut prev = SimTime::ZERO;
    for (i, &(class, raw)) in sched.events.iter().enumerate() {
        let at = timestamp(class, raw, prev);
        prev = at;
        let seq = match sched.key {
            Some(k) => mix64(i as u64 ^ PERTURBATION_KEYS[k as usize]),
            None => i as u64,
        };
        wheel.push(at, seq, i as u32);
        heap.push(at, seq, i as u32);
        if sched.pops_every > 0 && i % sched.pops_every as usize == 0 {
            prop_assert_eq!(wheel.peek_time(), heap.peek_time());
            prop_assert_eq!(wheel.pop(), heap.pop());
        }
    }
    loop {
        prop_assert_eq!(wheel.peek_time(), heap.peek_time());
        prop_assert_eq!(wheel.len(), heap.len());
        let (w, h) = (wheel.pop(), heap.pop());
        prop_assert_eq!(w, h);
        if w.is_none() {
            break;
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn wheel_matches_heap_on_arbitrary_schedules(sched in arb_sched()) {
        check(&sched)?;
    }
}

/// Regression pin for the frontier-straddle bug: an event buried in a
/// coarse (level-1) bucket whose time range the frontier enters via a
/// level-0 carry must pop before later events pushed into that same range.
/// The first wheel implementation drained the later level-0 bucket first,
/// jumping the frontier past the buried event.
#[test]
fn coarse_bucket_straddling_the_frontier_cascades_first() {
    let mut wheel = TimerWheel::new();
    let mut heap = ReferenceEventQueue::new();
    let push = |w: &mut TimerWheel<u32>, h: &mut ReferenceEventQueue<u32>, at, seq| {
        w.push(SimTime::from_nanos(at), seq, seq as u32);
        h.push(SimTime::from_nanos(at), seq, seq as u32);
    };
    push(&mut wheel, &mut heap, 100, 0); // level 0
    push(&mut wheel, &mut heap, 4_732_811, 1); // level 1, slot 1
    assert_eq!(wheel.pop(), heap.pop()); // pops seq 0
    push(&mut wheel, &mut heap, 4_150_000, 2); // level 0, last slot
    assert_eq!(wheel.pop(), heap.pop()); // pops seq 2; frontier carries
    push(&mut wheel, &mut heap, 6_000_000, 3); // level 0 in the new range

    // The buried 4.73 ms event must come out before the 6 ms one.
    let popped = wheel.pop();
    assert_eq!(popped, heap.pop());
    assert_eq!(popped.map(|(_, seq, _)| seq), Some(1));
    assert_eq!(wheel.pop(), heap.pop());
    assert_eq!(wheel.pop(), None);
}
