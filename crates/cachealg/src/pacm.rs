//! PACM — Priority-Aware Cache Management (paper §IV-C).
//!
//! When a delegated object arrives and the cache is full, PACM chooses the
//! keep-set `O` maximizing `Σ O_d · U_d` with
//! `U_d = R(A_d) · e_d · l_d · p_d`, subject to
//! `Σ O_d · s_d ≤ C − S` and the fairness bound `F(A) ≤ θ` on per-app
//! storage efficiency `C_a = Σ s_d / R(a)` (Gini coefficient, Eq. 1).
//!
//! The capacity constraint is solved exactly with the knapsack DP. The
//! fairness constraint couples all apps and cannot ride along in the same
//! one-dimensional DP, so — as documented in `DESIGN.md` — PACM applies a
//! *repair* pass afterwards: while the kept set violates `θ`, the
//! lowest-utility object of the most over-served app is dropped. The repair
//! only ever shrinks the kept set, so the capacity constraint stays
//! satisfied.
//!
//! # The incremental eviction engine
//!
//! `select_victims` is the simulator's hottest path, so this implementation
//! is built around a reusable [`KnapsackWorkspace`] and a set of *exact*
//! pre-solver reductions (see `DESIGN.md` §"PACM hot path" for the
//! exactness argument):
//!
//! * objects with zero utility (expired, zero TTL/latency) or whose rounded
//!   weight exceeds the knapsack capacity are forced victims — the seed DP
//!   provably never keeps them;
//! * when the surviving objects all fit the post-insertion capacity the
//!   keep-everything solution attains the utility upper bound, so the DP is
//!   skipped (an absorption-aware scan reproduces the DP's float behavior
//!   bit for bit);
//! * otherwise the DP runs on the surviving subset only, in the workspace.
//!
//! The fairness repair keeps per-app `(bytes, objects)` aggregates and a
//! per-app ordered index of kept objects, updating both in place per
//! evicted object — O(k log k) for the whole repair instead of the seed's
//! per-iteration map rebuild (O(k² log k)). Store-wide per-app aggregates
//! are maintained incrementally through the [`EvictionPolicy`] insert and
//! remove hooks; a `(objects, bytes)` fingerprint detects stores mutated
//! behind the policy's back (direct `CacheStore` users) and falls back to a
//! one-shot rescan, so the hooks are an optimization, never a correctness
//! requirement.
//!
//! Every reduction preserves the victim set byte for byte; the
//! `pacm_equivalence` property suite pins this against the frozen seed
//! implementation in [`crate::reference`].

use std::collections::{BTreeMap, BTreeSet};

use ape_dnswire::UrlHash;
use ape_simnet::SimTime;

use crate::freq::FrequencyTracker;
use crate::gini::gini_in_place;
use crate::knapsack::{solve_exact_in, solve_greedy, KnapsackItem, KnapsackWorkspace};
use crate::object::{AppId, ObjectMeta};
use crate::policy::EvictionPolicy;
use crate::store::CacheStore;

/// Tuning knobs for PACM, defaulting to the paper's settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacmConfig {
    /// EWMA smoothing for request frequency (paper: 0.7).
    pub alpha: f64,
    /// Fairness threshold θ on the Gini coefficient (paper: 0.4).
    pub fairness_theta: f64,
    /// Bytes per knapsack DP capacity unit.
    pub granularity: u64,
    /// Above this many cached objects the greedy solver replaces the DP.
    pub max_dp_items: usize,
    /// Floor applied to `R(a)` in utilities and storage efficiency so
    /// never-measured apps neither zero out nor blow up the formulas.
    pub min_rate: f64,
    /// Eviction watermark (bytes). When an eviction is needed, PACM evicts
    /// down to `capacity − evict_headroom` instead of exactly `capacity`,
    /// so a burst of admissions amortizes one solve across several inserts.
    /// `0` (the default) reproduces the seed behavior exactly.
    pub evict_headroom: u64,
}

impl Default for PacmConfig {
    fn default() -> Self {
        PacmConfig {
            alpha: 0.7,
            fairness_theta: 0.4,
            granularity: 1024,
            max_dp_items: 4096,
            min_rate: 0.05,
            evict_headroom: 0,
        }
    }
}

/// Counters describing how PACM's `select_victims` reached its answers.
///
/// Cumulative over the policy's lifetime; the AP node diffs consecutive
/// snapshots to attribute per-admission eviction cost in metrics/traces.
/// The per-admission deltas surface as the interned `ap.evict_*`
/// counters (`ape_proto::names::id::AP_EVICT_*`) in the metric registry,
/// and the host wall-clock the solver burns is attributed to the
/// `ProfCategory::Evict` row of `repro profile`'s sim-loop self-profile.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvictStats {
    /// `select_victims` invocations.
    pub solver_runs: u64,
    /// Cached objects examined across all invocations.
    pub items_considered: u64,
    /// Invocations solved by the knapsack DP.
    pub dp_runs: u64,
    /// Invocations solved by the greedy fallback (large stores).
    pub greedy_runs: u64,
    /// Invocations short-circuited because the surviving objects fit.
    pub short_circuits: u64,
    /// Objects evicted outright by the pre-solver reductions
    /// (zero utility — e.g. expired — or larger than the capacity).
    pub forced_victims: u64,
    /// Objects evicted by the fairness-repair loop.
    pub repair_evictions: u64,
}

/// Orders kept objects by `(utility, key)` inside the repair index.
///
/// `total_cmp` matches the seed's `partial_cmp` selection here: utilities
/// are finite, non-negative products (never `-0.0`), so the two orders
/// agree, and the trailing key makes every entry unique.
#[derive(Debug, Clone, Copy)]
struct UtilityKey(f64);

impl PartialEq for UtilityKey {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == std::cmp::Ordering::Equal
    }
}
impl Eq for UtilityKey {}
impl PartialOrd for UtilityKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for UtilityKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Internal view of a cached object during selection.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    key: UrlHash,
    app: AppId,
    size: u64,
    utility: f64,
}

/// The PACM eviction policy.
///
/// # Examples
///
/// ```
/// use ape_cachealg::{CacheManager, CacheStore, PacmConfig, PacmPolicy};
///
/// let store = CacheStore::new(5_000_000, 500_000);
/// let manager = CacheManager::new(store, PacmPolicy::new(PacmConfig::default()));
/// assert_eq!(manager.policy_name(), "pacm");
/// ```
#[derive(Debug)]
pub struct PacmPolicy {
    config: PacmConfig,
    freq: FrequencyTracker,
    /// Disables the fairness repair pass (θ = ∞ ablation).
    fairness_enabled: bool,
    /// Clamped per-app rates, refreshed once per window roll so the hot
    /// path reads one map instead of recomputing `max(R(a), min_rate)` per
    /// object. Apps absent here resolve to the same clamped value lazily.
    rates: BTreeMap<AppId, f64>,
    /// Store-wide per-app `(bytes, objects)`, maintained through the
    /// insert/remove hooks.
    app_bytes: BTreeMap<AppId, (u64, u32)>,
    /// Fingerprint of the store state `app_bytes` describes.
    tracked_objects: usize,
    tracked_bytes: u64,
    /// Reusable DP scratch.
    workspace: KnapsackWorkspace,
    /// Reusable per-call buffers.
    candidates: Vec<Candidate>,
    items: Vec<KnapsackItem>,
    keep: Vec<bool>,
    survivors: Vec<(u32, usize)>,
    kept_apps: Vec<(AppId, u64, u32)>,
    shares: Vec<f64>,
    by_app: BTreeMap<AppId, BTreeSet<(UtilityKey, UrlHash, u64)>>,
    stats: EvictStats,
}

impl PacmPolicy {
    /// Creates a PACM policy.
    ///
    /// # Panics
    ///
    /// Panics if the config's `alpha` is outside `(0, 1]` or
    /// `fairness_theta` is negative.
    pub fn new(config: PacmConfig) -> Self {
        assert!(config.fairness_theta >= 0.0, "theta must be non-negative");
        PacmPolicy {
            freq: FrequencyTracker::new(config.alpha),
            config,
            fairness_enabled: true,
            rates: BTreeMap::new(),
            app_bytes: BTreeMap::new(),
            tracked_objects: 0,
            tracked_bytes: 0,
            workspace: KnapsackWorkspace::new(),
            candidates: Vec::new(),
            items: Vec::new(),
            keep: Vec::new(),
            survivors: Vec::new(),
            kept_apps: Vec::new(),
            shares: Vec::new(),
            by_app: BTreeMap::new(),
            stats: EvictStats::default(),
        }
    }

    /// Disables the fairness constraint (for the ablation bench).
    pub fn without_fairness(mut self) -> Self {
        self.fairness_enabled = false;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &PacmConfig {
        &self.config
    }

    /// Current smoothed request rate for `app`.
    pub fn rate(&self, app: AppId) -> f64 {
        self.freq.rate(app)
    }

    /// Counters for the eviction engine (cumulative).
    pub fn stats(&self) -> EvictStats {
        self.stats
    }

    /// Buffer-growth events inside the knapsack workspace; flat after
    /// warm-up (the eviction microbench asserts this).
    pub fn workspace_allocations(&self) -> u64 {
        self.workspace.allocations()
    }

    /// Utility `U_d` of an object at `now` under current frequencies.
    pub fn utility(&self, meta: &ObjectMeta, now: SimTime) -> f64 {
        let rate = self.freq.rate(meta.app).max(self.config.min_rate);
        let e_d = meta.remaining_ttl(now).as_secs_f64();
        let l_d = meta.fetch_latency.as_secs_f64();
        rate * e_d * l_d * meta.priority.get() as f64
    }

    /// `max(R(a), min_rate)` through the per-window cache; identical bits
    /// to recomputing from the tracker, since rates change only on roll.
    fn cached_rate(&self, app: AppId) -> f64 {
        match self.rates.get(&app) {
            Some(&r) => r,
            None => self.freq.rate(app).max(self.config.min_rate),
        }
    }

    /// Rebuilds the store-wide per-app aggregates from `store` (the
    /// fallback when the insert/remove hooks were bypassed).
    fn resync_aggregates(&mut self, store: &CacheStore) {
        self.app_bytes.clear();
        for e in store.iter() {
            let slot = self.app_bytes.entry(e.meta.app).or_insert((0, 0));
            slot.0 += e.meta.size;
            slot.1 += 1;
        }
        self.tracked_objects = store.len();
        self.tracked_bytes = store.used();
    }

    /// Fairness repair over the kept set, appending victims in place.
    ///
    /// Reproduces the seed loop decision for decision: per iteration,
    /// recompute the Gini of per-app storage efficiency, pick the most
    /// over-served app (last among equals, as `Iterator::max_by`), and
    /// evict its `(utility, key)`-minimal kept object. The difference is
    /// purely representational: per-app aggregates are updated in place and
    /// the per-app victim choice is a `BTreeSet` pop instead of a rescan.
    fn repair(&mut self, victims: &mut Vec<UrlHash>) {
        // Kept per-app (bytes, objects): store-wide aggregates minus the
        // victims chosen so far. Byte sums are exact u64s; the seed's f64
        // accumulation is integer-exact in the same range (< 2^53).
        self.kept_apps.clear();
        for (&app, &(bytes, count)) in self.app_bytes.iter() {
            self.kept_apps.push((app, bytes, count));
        }
        for (c, &kept) in self.candidates.iter().zip(&self.keep) {
            if kept {
                continue;
            }
            let slot = self
                .kept_apps
                .binary_search_by_key(&c.app, |&(app, _, _)| app)
                .expect("victim app tracked");
            let (_, bytes, count) = &mut self.kept_apps[slot];
            *bytes -= c.size;
            *count -= 1;
        }
        debug_assert!(
            self.kept_apps.iter().all(|&(_, b, _)| b < (1u64 << 53)),
            "per-app byte totals must stay f64-integer-exact"
        );

        let mut indexed = false;
        loop {
            // Shares in ascending-app order over apps with kept objects —
            // the exact sequence the seed feeds to `gini`.
            self.shares.clear();
            for &(app, bytes, count) in &self.kept_apps {
                if count > 0 {
                    self.shares.push(bytes as f64 / self.cached_rate(app));
                }
            }
            // Loop only while F(A) > θ, like the seed's `while`; Gini is
            // always finite in [0, 1] so `<=` is its exact negation.
            if gini_in_place(&mut self.shares) <= self.config.fairness_theta {
                break;
            }
            if self.kept_apps.iter().filter(|&&(_, _, c)| c > 0).count() <= 1 {
                break;
            }

            // Most over-served app; `>=` keeps the last among equal maxima,
            // matching `Iterator::max_by` on the seed's ascending map.
            let mut worst: Option<(AppId, f64)> = None;
            for &(app, bytes, count) in &self.kept_apps {
                if count == 0 {
                    continue;
                }
                let eff = bytes as f64 / self.cached_rate(app);
                let replace = match worst {
                    None => true,
                    Some((_, best)) => eff.partial_cmp(&best).expect("finite efficiency").is_ge(),
                };
                if replace {
                    worst = Some((app, eff));
                }
            }
            let worst_app = worst.expect("non-empty per_app").0;

            // Lazily index kept objects per app, once per repair.
            if !indexed {
                self.by_app.clear();
                for (c, &kept) in self.candidates.iter().zip(&self.keep) {
                    if kept {
                        self.by_app.entry(c.app).or_default().insert((
                            UtilityKey(c.utility),
                            c.key,
                            c.size,
                        ));
                    }
                }
                indexed = true;
            }

            let set = self.by_app.get_mut(&worst_app).expect("indexed app");
            let (_, key, size) = set.pop_first().expect("app has kept objects");
            let slot = self
                .kept_apps
                .binary_search_by_key(&worst_app, |&(app, _, _)| app)
                .expect("worst app tracked");
            let (_, bytes, count) = &mut self.kept_apps[slot];
            *bytes -= size;
            *count -= 1;
            victims.push(key);
            self.stats.repair_evictions += 1;
        }
    }
}

impl EvictionPolicy for PacmPolicy {
    fn name(&self) -> &'static str {
        "pacm"
    }

    fn note_request(&mut self, app: AppId) {
        self.freq.record(app);
    }

    fn roll_window(&mut self, now: SimTime) {
        self.freq.roll(now);
        let min_rate = self.config.min_rate;
        self.rates.clear();
        for (app, rate) in self.freq.rates() {
            self.rates.insert(app, rate.max(min_rate));
        }
    }

    fn note_insert(&mut self, meta: &ObjectMeta) {
        let slot = self.app_bytes.entry(meta.app).or_insert((0, 0));
        slot.0 += meta.size;
        slot.1 += 1;
        self.tracked_objects += 1;
        self.tracked_bytes += meta.size;
    }

    fn note_remove(&mut self, meta: &ObjectMeta) {
        if let Some(slot) = self.app_bytes.get_mut(&meta.app) {
            slot.0 = slot.0.saturating_sub(meta.size);
            slot.1 = slot.1.saturating_sub(1);
            if slot.1 == 0 {
                self.app_bytes.remove(&meta.app);
            }
        }
        self.tracked_objects = self.tracked_objects.saturating_sub(1);
        self.tracked_bytes = self.tracked_bytes.saturating_sub(meta.size);
    }

    fn evict_stats(&self) -> Option<EvictStats> {
        Some(self.stats)
    }

    fn select_victims(
        &mut self,
        store: &CacheStore,
        incoming: &ObjectMeta,
        now: SimTime,
    ) -> Vec<UrlHash> {
        self.stats.solver_runs += 1;
        if self.tracked_objects != store.len() || self.tracked_bytes != store.used() {
            self.resync_aggregates(store);
        }

        // Candidates in key order (the store iterates its BTreeMap), with
        // utilities through the per-window rate cache — bit-identical to
        // `self.utility` since rates only change on `roll_window`.
        {
            let rates = &self.rates;
            let freq = &self.freq;
            let min_rate = self.config.min_rate;
            self.candidates.clear();
            self.candidates.extend(store.iter().map(|e| {
                let rate = match rates.get(&e.meta.app) {
                    Some(&r) => r,
                    None => freq.rate(e.meta.app).max(min_rate),
                };
                let e_d = e.meta.remaining_ttl(now).as_secs_f64();
                let l_d = e.meta.fetch_latency.as_secs_f64();
                Candidate {
                    key: e.meta.key,
                    app: e.meta.app,
                    size: e.meta.size,
                    utility: rate * e_d * l_d * e.meta.priority.get() as f64,
                }
            }));
        }
        debug_assert!(
            self.candidates.windows(2).all(|w| w[0].key < w[1].key),
            "store iteration must be key-ordered"
        );
        let n = self.candidates.len();
        self.stats.items_considered += n as u64;

        let capacity = store
            .capacity()
            .saturating_sub(self.config.evict_headroom)
            .saturating_sub(incoming.size);

        let mut victims: Vec<UrlHash> = Vec::new();
        if n <= self.config.max_dp_items {
            let granularity = self.config.granularity;
            assert!(granularity > 0, "granularity must be positive");
            let units = (capacity / granularity) as usize;

            // Reduction 1: zero-utility objects (expired) and objects whose
            // rounded weight exceeds the capacity are forced victims — the
            // seed DP's strict-improvement rule never keeps either.
            self.keep.clear();
            self.keep.resize(n, false);
            self.survivors.clear();
            let mut survivor_units = 0usize;
            for (i, c) in self.candidates.iter().enumerate() {
                assert!(
                    c.utility.is_finite() && c.utility >= 0.0,
                    "item values must be non-negative and finite"
                );
                let wi = c.size.div_ceil(granularity) as usize;
                if c.utility == 0.0 || wi > units {
                    continue;
                }
                self.survivors.push((i as u32, wi));
                survivor_units = survivor_units.saturating_add(wi);
            }
            self.stats.forced_victims += (n - self.survivors.len()) as u64;

            if survivor_units <= units {
                // Reduction 2: every survivor fits, so keeping them all
                // attains the utility upper bound — provably optimal, DP
                // skipped. The running-total comparison reproduces the
                // seed DP's float absorption behavior exactly.
                self.stats.short_circuits += 1;
                let mut plateau = 0.0f64;
                for &(i, _) in &self.survivors {
                    let candidate = plateau + self.candidates[i as usize].utility;
                    if candidate > plateau {
                        self.keep[i as usize] = true;
                        plateau = candidate;
                    }
                }
            } else {
                self.stats.dp_runs += 1;
                self.items.clear();
                self.items.extend(self.survivors.iter().map(|&(i, _)| {
                    let c = &self.candidates[i as usize];
                    KnapsackItem {
                        weight: c.size,
                        value: c.utility,
                    }
                }));
                solve_exact_in(&mut self.workspace, &self.items, capacity, granularity);
                for (&(i, _), &k) in self.survivors.iter().zip(self.workspace.keep()) {
                    if k {
                        self.keep[i as usize] = true;
                    }
                }
            }
        } else {
            // Greedy fallback for very large stores — unchanged from the
            // seed (zero-utility objects are *kept* here when they fit, so
            // the reductions above must not apply).
            self.stats.greedy_runs += 1;
            self.items.clear();
            self.items
                .extend(self.candidates.iter().map(|c| KnapsackItem {
                    weight: c.size,
                    value: c.utility,
                }));
            let solution = solve_greedy(&self.items, capacity);
            self.keep.clear();
            self.keep.extend_from_slice(&solution.keep);
        }

        victims.extend(
            self.candidates
                .iter()
                .zip(&self.keep)
                .filter(|(_, &k)| !k)
                .map(|(c, _)| c.key),
        );

        if self.fairness_enabled {
            self.repair(&mut victims);
        }
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::Priority;
    use crate::policy::{AdmitOutcome, CacheManager};
    use crate::reference::ReferencePacm;
    use crate::store::Lookup;
    use ape_simnet::SimDuration;

    fn meta_for(url: &str, app: u32, size: u64, priority: Priority, expires_s: u64) -> ObjectMeta {
        ObjectMeta {
            key: UrlHash::of(url),
            app: AppId::new(app),
            size,
            priority,
            expires_at: SimTime::from_secs(expires_s),
            fetch_latency: SimDuration::from_millis(30),
        }
    }

    fn pacm_manager(capacity: u64) -> CacheManager<PacmPolicy> {
        CacheManager::new(
            CacheStore::new(capacity, 500_000),
            PacmPolicy::new(PacmConfig::default()),
        )
    }

    #[test]
    fn utility_follows_paper_formula() {
        let mut policy = PacmPolicy::new(PacmConfig::default());
        let app = AppId::new(1);
        for _ in 0..10 {
            policy.note_request(app);
        }
        policy.roll_window(SimTime::from_secs(60));
        // rate = 7.0 after one window at alpha 0.7.
        let meta = meta_for("u", 1, 1000, Priority::HIGH, 160);
        let now = SimTime::from_secs(60);
        let expected = 7.0 * 100.0 * 0.030 * 2.0;
        assert!((policy.utility(&meta, now) - expected).abs() < 1e-9);
    }

    #[test]
    fn expired_objects_have_zero_utility() {
        let policy = PacmPolicy::new(PacmConfig::default());
        let meta = meta_for("u", 1, 1000, Priority::HIGH, 10);
        assert_eq!(policy.utility(&meta, SimTime::from_secs(20)), 0.0);
    }

    #[test]
    fn high_priority_objects_survive_eviction() {
        let mut m = pacm_manager(10_000);
        // Same app, same size/TTL — only priority differs.
        for i in 0..8 {
            let p = if i < 4 { Priority::HIGH } else { Priority::LOW };
            let out = m.admit(meta_for(&format!("u{i}"), 1, 1200, p, 3600), SimTime::ZERO);
            assert!(matches!(out, AdmitOutcome::Stored { .. }), "u{i}: {out:?}");
        }
        // Cache now holds 9600/10000; admit one more high-priority object.
        let out = m.admit(
            meta_for("fresh", 1, 1200, Priority::HIGH, 3600),
            SimTime::from_secs(1),
        );
        let AdmitOutcome::Stored { evicted } = out else {
            panic!("expected storage");
        };
        assert!(!evicted.is_empty());
        // All victims must be low-priority.
        for key in evicted {
            let idx = (0..8)
                .find(|i| UrlHash::of(&format!("u{i}")) == key)
                .expect("victim among u0..u7");
            assert!(idx >= 4, "evicted high-priority u{idx}");
        }
    }

    #[test]
    fn higher_frequency_apps_survive() {
        let config = PacmConfig {
            fairness_theta: 1.0, // isolate the frequency effect
            ..PacmConfig::default()
        };
        let mut m = CacheManager::new(CacheStore::new(4_000, 500_000), PacmPolicy::new(config));
        m.admit(meta_for("hot", 1, 1500, Priority::LOW, 3600), SimTime::ZERO);
        m.admit(
            meta_for("cold", 2, 1500, Priority::LOW, 3600),
            SimTime::ZERO,
        );
        for _ in 0..20 {
            m.note_request(AppId::new(1));
        }
        m.roll_window(SimTime::from_secs(60));
        let out = m.admit(
            meta_for("new", 3, 1500, Priority::LOW, 3600),
            SimTime::from_secs(61),
        );
        assert_eq!(
            out,
            AdmitOutcome::Stored {
                evicted: vec![UrlHash::of("cold")]
            }
        );
        assert_eq!(
            m.lookup(UrlHash::of("hot"), SimTime::from_secs(62)),
            Lookup::Hit
        );
    }

    #[test]
    fn longer_ttl_and_latency_win_ties() {
        let config = PacmConfig {
            fairness_theta: 1.0,
            ..PacmConfig::default()
        };
        let mut m = CacheManager::new(CacheStore::new(4_000, 500_000), PacmPolicy::new(config));
        let mut short = meta_for("short", 1, 1500, Priority::LOW, 100);
        short.fetch_latency = SimDuration::from_millis(30);
        let mut long = meta_for("long", 1, 1500, Priority::LOW, 3600);
        long.fetch_latency = SimDuration::from_millis(30);
        m.admit(short, SimTime::ZERO);
        m.admit(long, SimTime::ZERO);
        let out = m.admit(
            meta_for("new", 1, 1500, Priority::LOW, 3600),
            SimTime::from_secs(1),
        );
        assert_eq!(
            out,
            AdmitOutcome::Stored {
                evicted: vec![UrlHash::of("short")]
            }
        );
    }

    #[test]
    fn fairness_repair_bounds_gini() {
        // App 1 hoards the cache while app 2 is much more popular; with a
        // tight theta the repair pass must trim app 1's share.
        let config = PacmConfig {
            fairness_theta: 0.2,
            ..PacmConfig::default()
        };
        let mut policy = PacmPolicy::new(config);
        for _ in 0..30 {
            policy.note_request(AppId::new(2));
        }
        policy.roll_window(SimTime::from_secs(60));

        let mut store = CacheStore::new(20_000, 500_000);
        let now = SimTime::from_secs(61);
        for i in 0..6 {
            store.insert(
                meta_for(&format!("hog{i}"), 1, 2500, Priority::LOW, 3600),
                now,
            );
        }
        store.insert(meta_for("fair", 2, 2500, Priority::LOW, 3600), now);
        let incoming = meta_for("new", 2, 3000, Priority::LOW, 3600);
        let victims = policy.select_victims(&store, &incoming, now);
        // Repair must have evicted app-1 objects beyond pure capacity needs.
        let app1_victims = victims
            .iter()
            .filter(|k| (0..6).any(|i| UrlHash::of(&format!("hog{i}")) == **k))
            .count();
        assert!(app1_victims >= 1, "victims: {victims:?}");
        assert!(!victims.contains(&UrlHash::of("fair")));
        assert!(policy.stats().repair_evictions >= 1);
    }

    #[test]
    fn without_fairness_keeps_pure_knapsack() {
        let config = PacmConfig {
            fairness_theta: 0.0, // impossible bound
            ..PacmConfig::default()
        };
        let mut policy = PacmPolicy::new(config).without_fairness();
        let mut store = CacheStore::new(4_000, 500_000);
        store.insert(meta_for("a", 1, 1500, Priority::LOW, 3600), SimTime::ZERO);
        store.insert(meta_for("b", 2, 1500, Priority::LOW, 3600), SimTime::ZERO);
        let incoming = meta_for("new", 3, 1500, Priority::LOW, 3600);
        let victims = policy.select_victims(&store, &incoming, SimTime::ZERO);
        // Pure capacity: exactly one victim required.
        assert_eq!(victims.len(), 1);
    }

    #[test]
    fn select_is_deterministic() {
        let run = || {
            let mut m = pacm_manager(10_000);
            for i in 0..9 {
                m.admit(
                    meta_for(&format!("o{i}"), i % 3, 1100, Priority::LOW, 3600),
                    SimTime::from_secs(i as u64),
                );
            }
            match m.admit(
                meta_for("new", 1, 1100, Priority::HIGH, 3600),
                SimTime::from_secs(20),
            ) {
                AdmitOutcome::Stored { evicted } => evicted,
                other => panic!("unexpected {other:?}"),
            }
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn capacity_respected_after_admission() {
        let mut m = pacm_manager(5_000);
        for i in 0..40 {
            let out = m.admit(
                meta_for(&format!("x{i}"), i % 5, 700, Priority::LOW, 3600),
                SimTime::from_secs(i as u64),
            );
            assert!(matches!(out, AdmitOutcome::Stored { .. }), "x{i}: {out:?}");
            assert!(m.store().used() <= m.store().capacity());
        }
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn negative_theta_rejected() {
        let _ = PacmPolicy::new(PacmConfig {
            fairness_theta: -0.1,
            ..PacmConfig::default()
        });
    }

    #[test]
    fn expired_objects_alone_skip_the_solver() {
        // Three live objects (6000 B) + three expired (3600 B) in a
        // 10 kB store; the incoming 3000 B object needs only the expired
        // space, so the answer is forced: evict exactly the expired set,
        // run no DP.
        let mut policy = PacmPolicy::new(PacmConfig::default());
        let mut store = CacheStore::new(10_000, 500_000);
        for i in 0..3 {
            store.insert(
                meta_for(&format!("live{i}"), 1, 2000, Priority::LOW, 3600),
                SimTime::ZERO,
            );
            store.insert(
                meta_for(&format!("dead{i}"), 2, 1200, Priority::LOW, 10),
                SimTime::ZERO,
            );
        }
        let now = SimTime::from_secs(30);
        let incoming = meta_for("new", 3, 3000, Priority::LOW, 3600);
        let mut victims = policy.select_victims(&store, &incoming, now);
        victims.sort();
        let mut expected: Vec<UrlHash> = (0..3).map(|i| UrlHash::of(&format!("dead{i}"))).collect();
        expected.sort();
        assert_eq!(victims, expected);
        let stats = policy.stats();
        assert_eq!(stats.dp_runs, 0, "forced answer must not run the DP");
        assert_eq!(stats.short_circuits, 1);
        assert_eq!(stats.forced_victims, 3);
    }

    #[test]
    fn evict_headroom_defaults_to_seed_behavior() {
        assert_eq!(PacmConfig::default().evict_headroom, 0);
        // With headroom, the budget shrinks: selecting against a store of
        // equal-utility objects must evict strictly more than without.
        let base = PacmConfig {
            fairness_theta: 1.0,
            ..PacmConfig::default()
        };
        let with_headroom = PacmConfig {
            evict_headroom: 4_000,
            ..base
        };
        let mut store = CacheStore::new(10_000, 500_000);
        for i in 0..8 {
            store.insert(
                meta_for(&format!("o{i}"), 1, 1200, Priority::LOW, 3600),
                SimTime::ZERO,
            );
        }
        let incoming = meta_for("new", 2, 1200, Priority::LOW, 3600);
        let mut plain = PacmPolicy::new(base);
        let mut watermarked = PacmPolicy::new(with_headroom);
        let v0 = plain.select_victims(&store, &incoming, SimTime::from_secs(1));
        let v1 = watermarked.select_victims(&store, &incoming, SimTime::from_secs(1));
        assert!(
            v1.len() > v0.len(),
            "headroom must deepen eviction: {} vs {}",
            v1.len(),
            v0.len()
        );
        // Headroom h is exactly equivalent to the seed solving with an
        // incoming object h bytes larger.
        let mut reference = ReferencePacm::new(PacmConfig { ..base });
        let mut padded = incoming;
        padded.size += 4_000;
        let vr = reference.select_victims(&store, &padded, SimTime::from_secs(1));
        assert_eq!(v1, vr);
    }

    #[test]
    fn stats_attribute_solver_paths() {
        let mut m = pacm_manager(5_000);
        for i in 0..12 {
            let _ = m.admit(
                meta_for(&format!("s{i}"), i % 4, 900, Priority::LOW, 3600),
                SimTime::from_secs(i as u64),
            );
        }
        let stats = m.policy().evict_stats().expect("pacm reports stats");
        assert!(stats.solver_runs > 0);
        assert_eq!(
            stats.solver_runs,
            stats.dp_runs + stats.greedy_runs + stats.short_circuits,
            "every run resolves through exactly one solver path: {stats:?}"
        );
        assert!(stats.items_considered > 0);
    }

    #[test]
    fn hook_maintained_aggregates_match_rescan() {
        // Drive a manager (hooks fire), then check the policy's aggregates
        // against a fresh rescan of the store.
        let mut m = pacm_manager(8_000);
        for i in 0..20 {
            let ttl = if i % 3 == 0 { 5 } else { 3600 };
            let _ = m.admit(
                meta_for(&format!("h{i}"), i % 5, 800, Priority::LOW, ttl),
                SimTime::from_secs(i as u64),
            );
        }
        let _ = m.purge_expired(SimTime::from_secs(400));
        let mut expected: BTreeMap<AppId, (u64, u32)> = BTreeMap::new();
        let mut bytes = 0u64;
        for e in m.store().iter() {
            let slot = expected.entry(e.meta.app).or_insert((0, 0));
            slot.0 += e.meta.size;
            slot.1 += 1;
            bytes += e.meta.size;
        }
        let p = m.policy();
        assert_eq!(p.app_bytes, expected);
        assert_eq!(p.tracked_objects, m.store().len());
        assert_eq!(p.tracked_bytes, bytes);
    }
}
