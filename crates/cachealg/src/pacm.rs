//! PACM — Priority-Aware Cache Management (paper §IV-C).
//!
//! When a delegated object arrives and the cache is full, PACM chooses the
//! keep-set `O` maximizing `Σ O_d · U_d` with
//! `U_d = R(A_d) · e_d · l_d · p_d`, subject to
//! `Σ O_d · s_d ≤ C − S` and the fairness bound `F(A) ≤ θ` on per-app
//! storage efficiency `C_a = Σ s_d / R(a)` (Gini coefficient, Eq. 1).
//!
//! The capacity constraint is solved exactly with the knapsack DP. The
//! fairness constraint couples all apps and cannot ride along in the same
//! one-dimensional DP, so — as documented in `DESIGN.md` — PACM applies a
//! *repair* pass afterwards: while the kept set violates `θ`, the
//! lowest-utility object of the most over-served app is dropped. The repair
//! only ever shrinks the kept set, so the capacity constraint stays
//! satisfied.

use ape_dnswire::UrlHash;
use ape_simnet::SimTime;

use crate::freq::FrequencyTracker;
use crate::gini::gini;
use crate::knapsack::{solve_exact, solve_greedy, KnapsackItem};
use crate::object::{AppId, ObjectMeta};
use crate::policy::EvictionPolicy;
use crate::store::CacheStore;

/// Tuning knobs for PACM, defaulting to the paper's settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacmConfig {
    /// EWMA smoothing for request frequency (paper: 0.7).
    pub alpha: f64,
    /// Fairness threshold θ on the Gini coefficient (paper: 0.4).
    pub fairness_theta: f64,
    /// Bytes per knapsack DP capacity unit.
    pub granularity: u64,
    /// Above this many cached objects the greedy solver replaces the DP.
    pub max_dp_items: usize,
    /// Floor applied to `R(a)` in utilities and storage efficiency so
    /// never-measured apps neither zero out nor blow up the formulas.
    pub min_rate: f64,
}

impl Default for PacmConfig {
    fn default() -> Self {
        PacmConfig {
            alpha: 0.7,
            fairness_theta: 0.4,
            granularity: 1024,
            max_dp_items: 4096,
            min_rate: 0.05,
        }
    }
}

/// The PACM eviction policy.
///
/// # Examples
///
/// ```
/// use ape_cachealg::{CacheManager, CacheStore, PacmConfig, PacmPolicy};
///
/// let store = CacheStore::new(5_000_000, 500_000);
/// let manager = CacheManager::new(store, PacmPolicy::new(PacmConfig::default()));
/// assert_eq!(manager.policy_name(), "pacm");
/// ```
#[derive(Debug)]
pub struct PacmPolicy {
    config: PacmConfig,
    freq: FrequencyTracker,
    /// Disables the fairness repair pass (θ = ∞ ablation).
    fairness_enabled: bool,
}

impl PacmPolicy {
    /// Creates a PACM policy.
    ///
    /// # Panics
    ///
    /// Panics if the config's `alpha` is outside `(0, 1]` or
    /// `fairness_theta` is negative.
    pub fn new(config: PacmConfig) -> Self {
        assert!(config.fairness_theta >= 0.0, "theta must be non-negative");
        PacmPolicy {
            freq: FrequencyTracker::new(config.alpha),
            config,
            fairness_enabled: true,
        }
    }

    /// Disables the fairness constraint (for the ablation bench).
    pub fn without_fairness(mut self) -> Self {
        self.fairness_enabled = false;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &PacmConfig {
        &self.config
    }

    /// Current smoothed request rate for `app`.
    pub fn rate(&self, app: AppId) -> f64 {
        self.freq.rate(app)
    }

    /// Utility `U_d` of an object at `now` under current frequencies.
    pub fn utility(&self, meta: &ObjectMeta, now: SimTime) -> f64 {
        let rate = self.freq.rate(meta.app).max(self.config.min_rate);
        let e_d = meta.remaining_ttl(now).as_secs_f64();
        let l_d = meta.fetch_latency.as_secs_f64();
        rate * e_d * l_d * meta.priority.get() as f64
    }

    fn clamped_rate(&self, app: AppId) -> f64 {
        self.freq.rate(app).max(self.config.min_rate)
    }

    /// Storage-efficiency Gini over a candidate kept set.
    fn fairness(&self, kept: &[&KeptObject]) -> f64 {
        use std::collections::BTreeMap;
        let mut per_app: BTreeMap<AppId, f64> = BTreeMap::new();
        for obj in kept {
            *per_app.entry(obj.app).or_insert(0.0) += obj.size as f64;
        }
        let shares: Vec<f64> = per_app
            .iter()
            .map(|(app, bytes)| bytes / self.clamped_rate(*app))
            .collect();
        gini(&shares)
    }
}

/// Internal view of a cached object during selection.
#[derive(Debug, Clone)]
struct KeptObject {
    key: UrlHash,
    app: AppId,
    size: u64,
    utility: f64,
}

impl EvictionPolicy for PacmPolicy {
    fn name(&self) -> &'static str {
        "pacm"
    }

    fn note_request(&mut self, app: AppId) {
        self.freq.record(app);
    }

    fn roll_window(&mut self, now: SimTime) {
        self.freq.roll(now);
    }

    fn select_victims(
        &mut self,
        store: &CacheStore,
        incoming: &ObjectMeta,
        now: SimTime,
    ) -> Vec<UrlHash> {
        // Candidates sorted by key: hash-map iteration order must not leak
        // into victim selection.
        let mut candidates: Vec<KeptObject> = store
            .iter()
            .map(|e| KeptObject {
                key: e.meta.key,
                app: e.meta.app,
                size: e.meta.size,
                utility: self.utility(&e.meta, now),
            })
            .collect();
        candidates.sort_by_key(|o| o.key);

        let capacity = store.capacity().saturating_sub(incoming.size);
        let items: Vec<KnapsackItem> = candidates
            .iter()
            .map(|o| KnapsackItem {
                weight: o.size,
                value: o.utility,
            })
            .collect();
        let solution = if candidates.len() <= self.config.max_dp_items {
            solve_exact(&items, capacity, self.config.granularity)
        } else {
            solve_greedy(&items, capacity)
        };

        let mut kept: Vec<&KeptObject> = candidates
            .iter()
            .zip(&solution.keep)
            .filter(|(_, &k)| k)
            .map(|(o, _)| o)
            .collect();
        let mut victims: Vec<UrlHash> = candidates
            .iter()
            .zip(&solution.keep)
            .filter(|(_, &k)| !k)
            .map(|(o, _)| o.key)
            .collect();

        // Fairness repair: drop the cheapest object of the most over-served
        // app until F(A) ≤ θ (or only one app remains).
        if self.fairness_enabled {
            while self.fairness(&kept) > self.config.fairness_theta {
                let mut per_app: std::collections::BTreeMap<AppId, f64> = Default::default();
                for obj in &kept {
                    *per_app.entry(obj.app).or_insert(0.0) += obj.size as f64;
                }
                if per_app.len() <= 1 {
                    break;
                }
                let worst_app = per_app
                    .iter()
                    .map(|(app, bytes)| (*app, bytes / self.clamped_rate(*app)))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite efficiency"))
                    .map(|(app, _)| app)
                    .expect("non-empty per_app");
                let Some(pos) = kept
                    .iter()
                    .enumerate()
                    .filter(|(_, o)| o.app == worst_app)
                    .min_by(|a, b| {
                        a.1.utility
                            .partial_cmp(&b.1.utility)
                            .expect("finite utility")
                            .then(a.1.key.cmp(&b.1.key))
                    })
                    .map(|(i, _)| i)
                else {
                    break;
                };
                victims.push(kept.remove(pos).key);
            }
        }
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::Priority;
    use crate::policy::{AdmitOutcome, CacheManager};
    use crate::store::Lookup;
    use ape_simnet::SimDuration;

    fn meta_for(url: &str, app: u32, size: u64, priority: Priority, expires_s: u64) -> ObjectMeta {
        ObjectMeta {
            key: UrlHash::of(url),
            app: AppId::new(app),
            size,
            priority,
            expires_at: SimTime::from_secs(expires_s),
            fetch_latency: SimDuration::from_millis(30),
        }
    }

    fn pacm_manager(capacity: u64) -> CacheManager<PacmPolicy> {
        CacheManager::new(
            CacheStore::new(capacity, 500_000),
            PacmPolicy::new(PacmConfig::default()),
        )
    }

    #[test]
    fn utility_follows_paper_formula() {
        let mut policy = PacmPolicy::new(PacmConfig::default());
        let app = AppId::new(1);
        for _ in 0..10 {
            policy.note_request(app);
        }
        policy.roll_window(SimTime::from_secs(60));
        // rate = 7.0 after one window at alpha 0.7.
        let meta = meta_for("u", 1, 1000, Priority::HIGH, 160);
        let now = SimTime::from_secs(60);
        let expected = 7.0 * 100.0 * 0.030 * 2.0;
        assert!((policy.utility(&meta, now) - expected).abs() < 1e-9);
    }

    #[test]
    fn expired_objects_have_zero_utility() {
        let policy = PacmPolicy::new(PacmConfig::default());
        let meta = meta_for("u", 1, 1000, Priority::HIGH, 10);
        assert_eq!(policy.utility(&meta, SimTime::from_secs(20)), 0.0);
    }

    #[test]
    fn high_priority_objects_survive_eviction() {
        let mut m = pacm_manager(10_000);
        // Same app, same size/TTL — only priority differs.
        for i in 0..8 {
            let p = if i < 4 { Priority::HIGH } else { Priority::LOW };
            let out = m.admit(meta_for(&format!("u{i}"), 1, 1200, p, 3600), SimTime::ZERO);
            assert!(matches!(out, AdmitOutcome::Stored { .. }), "u{i}: {out:?}");
        }
        // Cache now holds 9600/10000; admit one more high-priority object.
        let out = m.admit(
            meta_for("fresh", 1, 1200, Priority::HIGH, 3600),
            SimTime::from_secs(1),
        );
        let AdmitOutcome::Stored { evicted } = out else {
            panic!("expected storage");
        };
        assert!(!evicted.is_empty());
        // All victims must be low-priority.
        for key in evicted {
            let idx = (0..8)
                .find(|i| UrlHash::of(&format!("u{i}")) == key)
                .expect("victim among u0..u7");
            assert!(idx >= 4, "evicted high-priority u{idx}");
        }
    }

    #[test]
    fn higher_frequency_apps_survive() {
        let config = PacmConfig {
            fairness_theta: 1.0, // isolate the frequency effect
            ..PacmConfig::default()
        };
        let mut m = CacheManager::new(CacheStore::new(4_000, 500_000), PacmPolicy::new(config));
        m.admit(meta_for("hot", 1, 1500, Priority::LOW, 3600), SimTime::ZERO);
        m.admit(
            meta_for("cold", 2, 1500, Priority::LOW, 3600),
            SimTime::ZERO,
        );
        for _ in 0..20 {
            m.note_request(AppId::new(1));
        }
        m.roll_window(SimTime::from_secs(60));
        let out = m.admit(
            meta_for("new", 3, 1500, Priority::LOW, 3600),
            SimTime::from_secs(61),
        );
        assert_eq!(
            out,
            AdmitOutcome::Stored {
                evicted: vec![UrlHash::of("cold")]
            }
        );
        assert_eq!(
            m.lookup(UrlHash::of("hot"), SimTime::from_secs(62)),
            Lookup::Hit
        );
    }

    #[test]
    fn longer_ttl_and_latency_win_ties() {
        let config = PacmConfig {
            fairness_theta: 1.0,
            ..PacmConfig::default()
        };
        let mut m = CacheManager::new(CacheStore::new(4_000, 500_000), PacmPolicy::new(config));
        let mut short = meta_for("short", 1, 1500, Priority::LOW, 100);
        short.fetch_latency = SimDuration::from_millis(30);
        let mut long = meta_for("long", 1, 1500, Priority::LOW, 3600);
        long.fetch_latency = SimDuration::from_millis(30);
        m.admit(short, SimTime::ZERO);
        m.admit(long, SimTime::ZERO);
        let out = m.admit(
            meta_for("new", 1, 1500, Priority::LOW, 3600),
            SimTime::from_secs(1),
        );
        assert_eq!(
            out,
            AdmitOutcome::Stored {
                evicted: vec![UrlHash::of("short")]
            }
        );
    }

    #[test]
    fn fairness_repair_bounds_gini() {
        // App 1 hoards the cache while app 2 is much more popular; with a
        // tight theta the repair pass must trim app 1's share.
        let config = PacmConfig {
            fairness_theta: 0.2,
            ..PacmConfig::default()
        };
        let mut policy = PacmPolicy::new(config);
        for _ in 0..30 {
            policy.note_request(AppId::new(2));
        }
        policy.roll_window(SimTime::from_secs(60));

        let mut store = CacheStore::new(20_000, 500_000);
        let now = SimTime::from_secs(61);
        for i in 0..6 {
            store.insert(
                meta_for(&format!("hog{i}"), 1, 2500, Priority::LOW, 3600),
                now,
            );
        }
        store.insert(meta_for("fair", 2, 2500, Priority::LOW, 3600), now);
        let incoming = meta_for("new", 2, 3000, Priority::LOW, 3600);
        let victims = policy.select_victims(&store, &incoming, now);
        // Repair must have evicted app-1 objects beyond pure capacity needs.
        let app1_victims = victims
            .iter()
            .filter(|k| (0..6).any(|i| UrlHash::of(&format!("hog{i}")) == **k))
            .count();
        assert!(app1_victims >= 1, "victims: {victims:?}");
        assert!(!victims.contains(&UrlHash::of("fair")));
    }

    #[test]
    fn without_fairness_keeps_pure_knapsack() {
        let config = PacmConfig {
            fairness_theta: 0.0, // impossible bound
            ..PacmConfig::default()
        };
        let mut policy = PacmPolicy::new(config).without_fairness();
        let mut store = CacheStore::new(4_000, 500_000);
        store.insert(meta_for("a", 1, 1500, Priority::LOW, 3600), SimTime::ZERO);
        store.insert(meta_for("b", 2, 1500, Priority::LOW, 3600), SimTime::ZERO);
        let incoming = meta_for("new", 3, 1500, Priority::LOW, 3600);
        let victims = policy.select_victims(&store, &incoming, SimTime::ZERO);
        // Pure capacity: exactly one victim required.
        assert_eq!(victims.len(), 1);
    }

    #[test]
    fn select_is_deterministic() {
        let run = || {
            let mut m = pacm_manager(10_000);
            for i in 0..9 {
                m.admit(
                    meta_for(&format!("o{i}"), i % 3, 1100, Priority::LOW, 3600),
                    SimTime::from_secs(i as u64),
                );
            }
            match m.admit(
                meta_for("new", 1, 1100, Priority::HIGH, 3600),
                SimTime::from_secs(20),
            ) {
                AdmitOutcome::Stored { evicted } => evicted,
                other => panic!("unexpected {other:?}"),
            }
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn capacity_respected_after_admission() {
        let mut m = pacm_manager(5_000);
        for i in 0..40 {
            let out = m.admit(
                meta_for(&format!("x{i}"), i % 5, 700, Priority::LOW, 3600),
                SimTime::from_secs(i as u64),
            );
            assert!(matches!(out, AdmitOutcome::Stored { .. }), "x{i}: {out:?}");
            assert!(m.store().used() <= m.store().capacity());
        }
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn negative_theta_rejected() {
        let _ = PacmPolicy::new(PacmConfig {
            fairness_theta: -0.1,
            ..PacmConfig::default()
        });
    }
}
