//! Least-recently-used eviction — the policy used by Wi-Cache and by the
//! APE-CACHE-LRU ablation baseline.

use ape_dnswire::UrlHash;
use ape_simnet::SimTime;

use crate::object::ObjectMeta;
use crate::policy::EvictionPolicy;
use crate::store::CacheStore;

/// Classic LRU: evict the least-recently-accessed objects until the
/// incoming object fits.
///
/// Ties on access time break by key so victim selection is deterministic
/// regardless of hash-map iteration order.
#[derive(Debug, Clone, Copy, Default)]
pub struct LruPolicy;

impl LruPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        LruPolicy
    }
}

impl EvictionPolicy for LruPolicy {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn select_victims(
        &mut self,
        store: &CacheStore,
        incoming: &ObjectMeta,
        _now: SimTime,
    ) -> Vec<UrlHash> {
        let mut by_recency: Vec<(SimTime, UrlHash, u64)> = store
            .iter()
            .map(|e| (e.last_access, e.meta.key, e.meta.size))
            .collect();
        by_recency.sort();
        let mut victims = Vec::new();
        let mut reclaimed = store.free();
        for (_, key, size) in by_recency {
            if reclaimed >= incoming.size {
                break;
            }
            victims.push(key);
            reclaimed += size;
        }
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{AppId, Priority};
    use crate::policy::{AdmitOutcome, CacheManager};
    use crate::store::Lookup;
    use ape_simnet::SimDuration;

    fn meta(url: &str, size: u64) -> ObjectMeta {
        ObjectMeta {
            key: UrlHash::of(url),
            app: AppId::new(1),
            size,
            priority: Priority::LOW,
            expires_at: SimTime::from_secs(3600),
            fetch_latency: SimDuration::from_millis(25),
        }
    }

    fn manager(capacity: u64) -> CacheManager<LruPolicy> {
        CacheManager::new(CacheStore::new(capacity, 500_000), LruPolicy::new())
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut m = manager(250);
        m.admit(meta("a", 100), SimTime::from_secs(1));
        m.admit(meta("b", 100), SimTime::from_secs(2));
        // Touch "a" so "b" becomes the LRU victim.
        assert_eq!(
            m.lookup(UrlHash::of("a"), SimTime::from_secs(3)),
            Lookup::Hit
        );
        let out = m.admit(meta("c", 100), SimTime::from_secs(4));
        assert_eq!(
            out,
            AdmitOutcome::Stored {
                evicted: vec![UrlHash::of("b")]
            }
        );
        assert_eq!(
            m.lookup(UrlHash::of("a"), SimTime::from_secs(5)),
            Lookup::Hit
        );
        assert_eq!(
            m.lookup(UrlHash::of("b"), SimTime::from_secs(5)),
            Lookup::Absent
        );
    }

    #[test]
    fn evicts_multiple_when_needed() {
        let mut m = manager(300);
        m.admit(meta("a", 100), SimTime::from_secs(1));
        m.admit(meta("b", 100), SimTime::from_secs(2));
        m.admit(meta("c", 100), SimTime::from_secs(3));
        let out = m.admit(meta("d", 250), SimTime::from_secs(4));
        match out {
            AdmitOutcome::Stored { evicted } => {
                assert_eq!(evicted.len(), 3, "needs all three evicted: {evicted:?}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut m = manager(1000);
        for i in 0..50 {
            let out = m.admit(meta(&format!("u{i}"), 90), SimTime::from_secs(i));
            assert!(matches!(out, AdmitOutcome::Stored { .. }));
            assert!(m.store().used() <= m.store().capacity());
        }
    }

    #[test]
    fn deterministic_tie_break() {
        // Two entries with identical last_access: victim picked by key.
        let run = || {
            let mut m = manager(250);
            m.admit(meta("x", 100), SimTime::from_secs(1));
            m.admit(meta("y", 100), SimTime::from_secs(1));
            match m.admit(meta("z", 150), SimTime::from_secs(2)) {
                AdmitOutcome::Stored { evicted } => evicted,
                other => panic!("unexpected {other:?}"),
            }
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn policy_name() {
        assert_eq!(LruPolicy::new().name(), "lru");
    }
}
