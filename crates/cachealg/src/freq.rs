//! Per-app request-frequency tracking (the paper's `R(a)` EWMA).
//!
//! The AP recomputes, once per round, `R(a) = (1 − α)·R'(a) + α·r_a(Δt)`
//! where `r_a(Δt)` is the number of requests for app `a` observed since the
//! previous round and `α` (0.7 in the paper) weights recent measurements.

use std::collections::{BTreeMap, BTreeSet};

use ape_simnet::SimTime;

use crate::object::AppId;

/// Exponentially weighted per-app request-frequency estimator.
///
/// # Examples
///
/// ```
/// use ape_cachealg::{AppId, FrequencyTracker};
/// use ape_simnet::SimTime;
///
/// let mut tracker = FrequencyTracker::new(0.7);
/// let app = AppId::new(1);
/// tracker.record(app);
/// tracker.record(app);
/// tracker.roll(SimTime::from_secs(60));
/// assert!(tracker.rate(app) > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct FrequencyTracker {
    alpha: f64,
    rates: BTreeMap<AppId, f64>,
    window_counts: BTreeMap<AppId, u64>,
    last_roll: SimTime,
}

impl FrequencyTracker {
    /// Creates a tracker with smoothing factor `alpha` (the paper uses 0.7).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha <= 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        FrequencyTracker {
            alpha,
            rates: BTreeMap::new(),
            window_counts: BTreeMap::new(),
            last_roll: SimTime::ZERO,
        }
    }

    /// Records one request for `app` in the current window.
    pub fn record(&mut self, app: AppId) {
        *self.window_counts.entry(app).or_insert(0) += 1;
    }

    /// Rates decayed below this are dropped from the table entirely: a
    /// long-quiet app's EWMA approaches zero geometrically but never
    /// reaches it, so without a floor the map grows monotonically for the
    /// AP's whole uptime. 1e-6 is far below any rate PACM's utility
    /// function can distinguish from zero.
    const DROP_EPSILON: f64 = 1e-6;

    /// Closes the current window at `now` and folds its counts into the
    /// per-app EWMA. Apps seen before but quiet this window decay, and
    /// apps whose rate has decayed to (effectively) zero are dropped so
    /// the table tracks only live apps.
    pub fn roll(&mut self, now: SimTime) {
        let counts = std::mem::take(&mut self.window_counts);
        // Decay every known app; quiet apps contribute zero new requests.
        // The set union also dedups apps present in both maps — chaining
        // the key iterators raw would fold such apps twice per roll.
        let apps: BTreeSet<AppId> = self
            .rates
            .keys()
            .copied()
            .chain(counts.keys().copied())
            .collect();
        for app in apps {
            let fresh = counts.get(&app).copied().unwrap_or(0) as f64;
            let prev = self.rates.get(&app).copied().unwrap_or(0.0);
            let next = (1.0 - self.alpha) * prev + self.alpha * fresh;
            if next < Self::DROP_EPSILON {
                self.rates.remove(&app);
            } else {
                self.rates.insert(app, next);
            }
        }
        self.last_roll = now;
    }

    /// Current smoothed request frequency `R(a)`; zero for unseen apps.
    pub fn rate(&self, app: AppId) -> f64 {
        self.rates.get(&app).copied().unwrap_or(0.0)
    }

    /// Iterates `(app, R(a))` for every tracked app in ascending app order.
    ///
    /// Rates change only on [`FrequencyTracker::roll`], so callers may cache
    /// derived per-app values between rolls (PACM's clamped-rate table).
    pub fn rates(&self) -> impl Iterator<Item = (AppId, f64)> + '_ {
        self.rates.iter().map(|(&app, &rate)| (app, rate))
    }

    /// Time of the last roll.
    pub fn last_roll(&self) -> SimTime {
        self.last_roll
    }

    /// Number of apps with a tracked rate.
    pub fn tracked_apps(&self) -> usize {
        self.rates.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_window_applies_alpha() {
        let mut t = FrequencyTracker::new(0.7);
        let a = AppId::new(1);
        for _ in 0..10 {
            t.record(a);
        }
        t.roll(SimTime::from_secs(60));
        assert!((t.rate(a) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn rates_decay_when_quiet() {
        let mut t = FrequencyTracker::new(0.7);
        let a = AppId::new(1);
        for _ in 0..10 {
            t.record(a);
        }
        t.roll(SimTime::from_secs(60));
        let r1 = t.rate(a);
        t.roll(SimTime::from_secs(120));
        let r2 = t.rate(a);
        assert!((r2 - r1 * 0.3).abs() < 1e-9, "r1={r1} r2={r2}");
        t.roll(SimTime::from_secs(180));
        assert!(t.rate(a) < r2);
    }

    #[test]
    fn steady_load_converges_to_window_count() {
        let mut t = FrequencyTracker::new(0.7);
        let a = AppId::new(1);
        for round in 1..=30 {
            for _ in 0..6 {
                t.record(a);
            }
            t.roll(SimTime::from_secs(round * 60));
        }
        assert!((t.rate(a) - 6.0).abs() < 1e-3, "rate {}", t.rate(a));
    }

    #[test]
    fn unseen_apps_have_zero_rate() {
        let t = FrequencyTracker::new(0.5);
        assert_eq!(t.rate(AppId::new(9)), 0.0);
        assert_eq!(t.tracked_apps(), 0);
    }

    #[test]
    fn multiple_apps_tracked_independently() {
        let mut t = FrequencyTracker::new(1.0); // no smoothing: rate == count
        let a = AppId::new(1);
        let b = AppId::new(2);
        t.record(a);
        t.record(a);
        t.record(b);
        t.roll(SimTime::from_secs(60));
        assert_eq!(t.rate(a), 2.0);
        assert_eq!(t.rate(b), 1.0);
        assert_eq!(t.tracked_apps(), 2);
        assert_eq!(t.last_roll(), SimTime::from_secs(60));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn zero_alpha_rejected() {
        let _ = FrequencyTracker::new(0.0);
    }

    #[test]
    fn decayed_quiet_apps_are_dropped() {
        let mut t = FrequencyTracker::new(0.7);
        let quiet = AppId::new(1);
        let busy = AppId::new(2);
        t.record(quiet);
        t.record(busy);
        t.roll(SimTime::from_secs(60));
        assert_eq!(t.tracked_apps(), 2);

        // 0.7 * 0.3^k drops below 1e-6 after k = 12 quiet windows; the
        // busy app keeps getting requests and must survive every roll.
        for round in 2..=20 {
            t.record(busy);
            t.roll(SimTime::from_secs(round * 60));
        }
        assert_eq!(t.tracked_apps(), 1, "quiet app should have been dropped");
        assert_eq!(t.rate(quiet), 0.0);
        assert!(t.rate(busy) > 0.5);
    }

    #[test]
    fn dropped_app_returns_when_active_again() {
        let mut t = FrequencyTracker::new(1.0); // alpha 1: one quiet roll drops
        let a = AppId::new(7);
        t.record(a);
        t.roll(SimTime::from_secs(60));
        assert_eq!(t.tracked_apps(), 1);
        t.roll(SimTime::from_secs(120));
        assert_eq!(t.tracked_apps(), 0);
        t.record(a);
        t.roll(SimTime::from_secs(180));
        assert_eq!(t.tracked_apps(), 1);
        assert_eq!(t.rate(a), 1.0);
    }
}
