//! The AP's object cache store: bounded capacity, TTL expiry, block list.
//!
//! Entries live in ordered maps so every walk (expiry purge, eviction
//! scans, per-priority accounting) visits objects in key order — part of
//! the simulator's bitwise-determinism contract (lint rule `map-iter`).

use std::collections::{BTreeMap, BTreeSet};

use ape_dnswire::UrlHash;
use ape_simnet::SimTime;

use crate::object::ObjectMeta;

/// A cached object plus bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Object metadata.
    pub meta: ObjectMeta,
    /// When the object was inserted.
    pub inserted_at: SimTime,
    /// Last access time (drives LRU).
    pub last_access: SimTime,
    /// Number of cache hits served from this entry.
    pub hits: u64,
}

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Fresh object present; can be served.
    Hit,
    /// Key is on the block list; the AP refuses to serve or delegate-cache it.
    Blocked,
    /// Object present but past its TTL (will be treated as absent).
    Expired,
    /// Never seen or previously evicted.
    Absent,
}

/// Bounded cache keyed by hashed URL.
///
/// The store only tracks metadata and byte accounting; actual payloads live
/// with the node runtimes. Capacity accounting uses the declared object
/// sizes (`s_d`).
///
/// # Examples
///
/// ```
/// use ape_cachealg::{AppId, CacheStore, Lookup, ObjectMeta, Priority};
/// use ape_dnswire::UrlHash;
/// use ape_simnet::{SimDuration, SimTime};
///
/// let mut store = CacheStore::new(5_000_000, 500_000);
/// let meta = ObjectMeta {
///     key: UrlHash::of("http://a/obj"),
///     app: AppId::new(1),
///     size: 10_000,
///     priority: Priority::HIGH,
///     expires_at: SimTime::from_secs(600),
///     fetch_latency: SimDuration::from_millis(30),
/// };
/// store.insert(meta.clone(), SimTime::ZERO);
/// assert_eq!(store.lookup(meta.key, SimTime::from_secs(1)), Lookup::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct CacheStore {
    capacity: u64,
    used: u64,
    entries: BTreeMap<UrlHash, Entry>,
    block_list: BTreeSet<UrlHash>,
    block_threshold: u64,
}

impl CacheStore {
    /// Creates a store with `capacity` bytes; objects larger than
    /// `block_threshold` are block-listed instead of cached (the paper uses
    /// 5 MB and 500 KB respectively).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64, block_threshold: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        CacheStore {
            capacity,
            used: 0,
            entries: BTreeMap::new(),
            block_list: BTreeSet::new(),
            block_threshold,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently accounted to cached objects.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes still free.
    pub fn free(&self) -> u64 {
        self.capacity - self.used
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no objects.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The block-list size threshold in bytes.
    pub fn block_threshold(&self) -> u64 {
        self.block_threshold
    }

    /// Whether `size` exceeds the block-list threshold.
    pub fn exceeds_block_threshold(&self, size: u64) -> bool {
        size > self.block_threshold
    }

    /// Classifies a key without mutating access metadata.
    pub fn peek(&self, key: UrlHash, now: SimTime) -> Lookup {
        if self.block_list.contains(&key) {
            return Lookup::Blocked;
        }
        match self.entries.get(&key) {
            Some(e) if e.meta.is_expired(now) => Lookup::Expired,
            Some(_) => Lookup::Hit,
            None => Lookup::Absent,
        }
    }

    /// Classifies a key and, on a hit, bumps its recency and hit count.
    pub fn lookup(&mut self, key: UrlHash, now: SimTime) -> Lookup {
        if self.block_list.contains(&key) {
            return Lookup::Blocked;
        }
        match self.entries.get_mut(&key) {
            Some(e) if e.meta.is_expired(now) => Lookup::Expired,
            Some(e) => {
                e.last_access = now;
                e.hits += 1;
                Lookup::Hit
            }
            None => Lookup::Absent,
        }
    }

    /// Inserts (or replaces) an object. The caller must have made room:
    /// inserting beyond capacity is a policy bug.
    ///
    /// # Panics
    ///
    /// Panics if the object does not fit in the remaining capacity or is
    /// block-list-sized (callers must check [`exceeds_block_threshold`]
    /// first).
    ///
    /// [`exceeds_block_threshold`]: Self::exceeds_block_threshold
    pub fn insert(&mut self, meta: ObjectMeta, now: SimTime) {
        assert!(
            !self.exceeds_block_threshold(meta.size),
            "object of {} bytes exceeds block threshold",
            meta.size
        );
        if let Some(old) = self.entries.remove(&meta.key) {
            self.used -= old.meta.size;
        }
        assert!(
            meta.size <= self.free(),
            "insert of {} bytes into {} free bytes; evict first",
            meta.size,
            self.free()
        );
        self.used += meta.size;
        self.entries.insert(
            meta.key,
            Entry {
                meta,
                inserted_at: now,
                last_access: now,
                hits: 0,
            },
        );
    }

    /// Removes an object, returning its entry if present.
    pub fn remove(&mut self, key: UrlHash) -> Option<Entry> {
        let entry = self.entries.remove(&key)?;
        self.used -= entry.meta.size;
        Some(entry)
    }

    /// Adds a key to the block list (and drops any cached copy).
    pub fn block(&mut self, key: UrlHash) {
        self.remove(key);
        self.block_list.insert(key);
    }

    /// Whether a key is block-listed.
    pub fn is_blocked(&self, key: UrlHash) -> bool {
        self.block_list.contains(&key)
    }

    /// Drops every expired object, returning their metadata in key order
    /// (callers advertise the keys and feed the sizes to policy hooks).
    pub fn purge_expired(&mut self, now: SimTime) -> Vec<ObjectMeta> {
        let expired: Vec<UrlHash> = self
            .entries
            .iter()
            .filter(|(_, e)| e.meta.is_expired(now))
            .map(|(k, _)| *k)
            .collect();
        expired
            .into_iter()
            .filter_map(|key| self.remove(key))
            .map(|entry| entry.meta)
            .collect()
    }

    /// Iterates over current entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = &Entry> {
        self.entries.values()
    }

    /// Looks up an entry without touching recency.
    pub fn get(&self, key: UrlHash) -> Option<&Entry> {
        self.entries.get(&key)
    }

    /// Keys of all cached objects, in key order. Used by the AP to batch
    /// per-domain flags.
    pub fn keys(&self) -> impl Iterator<Item = UrlHash> + '_ {
        self.entries.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{AppId, Priority};
    use ape_simnet::SimDuration;

    fn meta(url: &str, size: u64, expires_s: u64) -> ObjectMeta {
        ObjectMeta {
            key: UrlHash::of(url),
            app: AppId::new(1),
            size,
            priority: Priority::LOW,
            expires_at: SimTime::from_secs(expires_s),
            fetch_latency: SimDuration::from_millis(25),
        }
    }

    #[test]
    fn insert_lookup_hit() {
        let mut s = CacheStore::new(1000, 500);
        s.insert(meta("a", 100, 60), SimTime::ZERO);
        assert_eq!(
            s.lookup(UrlHash::of("a"), SimTime::from_secs(1)),
            Lookup::Hit
        );
        assert_eq!(s.used(), 100);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(UrlHash::of("a")).unwrap().hits, 1);
    }

    #[test]
    fn unknown_key_is_absent() {
        let mut s = CacheStore::new(1000, 500);
        assert_eq!(s.lookup(UrlHash::of("nope"), SimTime::ZERO), Lookup::Absent);
    }

    #[test]
    fn expired_objects_report_expired_and_purge() {
        let mut s = CacheStore::new(1000, 500);
        s.insert(meta("a", 100, 10), SimTime::ZERO);
        assert_eq!(
            s.lookup(UrlHash::of("a"), SimTime::from_secs(11)),
            Lookup::Expired
        );
        let purged = s.purge_expired(SimTime::from_secs(11));
        assert_eq!(
            purged.iter().map(|m| m.key).collect::<Vec<_>>(),
            vec![UrlHash::of("a")]
        );
        assert_eq!(s.used(), 0);
        assert_eq!(
            s.lookup(UrlHash::of("a"), SimTime::from_secs(11)),
            Lookup::Absent
        );
    }

    #[test]
    fn blocked_keys_report_blocked() {
        let mut s = CacheStore::new(1000, 500);
        s.insert(meta("big", 100, 60), SimTime::ZERO);
        s.block(UrlHash::of("big"));
        assert_eq!(s.lookup(UrlHash::of("big"), SimTime::ZERO), Lookup::Blocked);
        assert!(s.is_blocked(UrlHash::of("big")));
        assert_eq!(s.used(), 0, "blocking drops the cached copy");
    }

    #[test]
    fn replace_updates_accounting() {
        let mut s = CacheStore::new(1000, 500);
        s.insert(meta("a", 100, 60), SimTime::ZERO);
        s.insert(meta("a", 300, 60), SimTime::from_secs(1));
        assert_eq!(s.used(), 300);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn remove_frees_bytes() {
        let mut s = CacheStore::new(1000, 500);
        s.insert(meta("a", 100, 60), SimTime::ZERO);
        let entry = s.remove(UrlHash::of("a")).unwrap();
        assert_eq!(entry.meta.size, 100);
        assert_eq!(s.used(), 0);
        assert!(s.remove(UrlHash::of("a")).is_none());
    }

    #[test]
    #[should_panic(expected = "evict first")]
    fn over_capacity_insert_panics() {
        let mut s = CacheStore::new(150, 500);
        s.insert(meta("a", 100, 60), SimTime::ZERO);
        s.insert(meta("b", 100, 60), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "block threshold")]
    fn oversized_insert_panics() {
        let mut s = CacheStore::new(10_000, 500);
        s.insert(meta("big", 501, 60), SimTime::ZERO);
    }

    #[test]
    fn peek_does_not_touch_recency() {
        let mut s = CacheStore::new(1000, 500);
        s.insert(meta("a", 100, 60), SimTime::ZERO);
        assert_eq!(s.peek(UrlHash::of("a"), SimTime::from_secs(1)), Lookup::Hit);
        assert_eq!(s.get(UrlHash::of("a")).unwrap().hits, 0);
        assert_eq!(s.get(UrlHash::of("a")).unwrap().last_access, SimTime::ZERO);
    }

    #[test]
    fn free_plus_used_is_capacity() {
        let mut s = CacheStore::new(1000, 500);
        s.insert(meta("a", 123, 60), SimTime::ZERO);
        assert_eq!(s.free() + s.used(), s.capacity());
        assert!(!s.is_empty());
        assert_eq!(s.iter().count(), 1);
        assert_eq!(s.keys().count(), 1);
    }

    #[test]
    fn threshold_checks() {
        let s = CacheStore::new(1000, 500);
        assert!(s.exceeds_block_threshold(501));
        assert!(!s.exceeds_block_threshold(500));
        assert_eq!(s.block_threshold(), 500);
    }
}
