//! 0/1 knapsack solvers used by PACM's eviction step (the paper's Eq. 2).
//!
//! PACM keeps the subset of cached objects that maximizes total utility
//! subject to the post-insertion capacity. The exact dynamic program runs in
//! `O(items × capacity_units)`; a value-density greedy serves as the
//! fallback for unusually large instances and as an ablation baseline.

/// One candidate object for the keep-set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnapsackItem {
    /// Size in bytes (`s_d`).
    pub weight: u64,
    /// Utility (`U_d`); must be non-negative and finite.
    pub value: f64,
}

/// Solution of a knapsack instance.
#[derive(Debug, Clone, PartialEq)]
pub struct KnapsackSolution {
    /// `keep[i]` is true when item `i` stays in the cache.
    pub keep: Vec<bool>,
    /// Total utility of the kept set.
    pub total_value: f64,
    /// Total bytes of the kept set.
    pub total_weight: u64,
}

/// Exact DP solver.
///
/// `granularity` (bytes per DP unit, e.g. 1024) bounds the table size; item
/// weights are rounded *up* to units so the byte capacity is never exceeded.
///
/// # Panics
///
/// Panics if `granularity` is zero or any value is negative/non-finite.
pub fn solve_exact(items: &[KnapsackItem], capacity: u64, granularity: u64) -> KnapsackSolution {
    assert!(granularity > 0, "granularity must be positive");
    for it in items {
        assert!(
            it.value.is_finite() && it.value >= 0.0,
            "item values must be non-negative and finite"
        );
    }
    let units = (capacity / granularity) as usize;
    let weights: Vec<usize> = items
        .iter()
        .map(|it| (it.weight.div_ceil(granularity)) as usize)
        .collect();

    // dp[w] = best value with capacity w; choice[i][w] = item i taken at w.
    let mut dp = vec![0.0f64; units + 1];
    let mut choice = vec![false; items.len() * (units + 1)];
    for (i, item) in items.iter().enumerate() {
        let wi = weights[i];
        if wi > units {
            continue;
        }
        for w in (wi..=units).rev() {
            let candidate = dp[w - wi] + item.value;
            if candidate > dp[w] {
                dp[w] = candidate;
                choice[i * (units + 1) + w] = true;
            }
        }
    }

    // Walk choices backwards to recover the kept set.
    let mut keep = vec![false; items.len()];
    let mut w = units;
    for i in (0..items.len()).rev() {
        if choice[i * (units + 1) + w] {
            keep[i] = true;
            w -= weights[i];
        }
    }
    finish(items, keep)
}

/// Greedy value-density solver (higher `value/weight` first).
///
/// Provides a fast approximation and the ablation point for
/// "knapsack-DP vs greedy" in `DESIGN.md`.
pub fn solve_greedy(items: &[KnapsackItem], capacity: u64) -> KnapsackSolution {
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| {
        let da = density(&items[a]);
        let db = density(&items[b]);
        db.partial_cmp(&da).expect("finite densities")
    });
    let mut keep = vec![false; items.len()];
    let mut used = 0u64;
    for i in order {
        if used + items[i].weight <= capacity {
            keep[i] = true;
            used += items[i].weight;
        }
    }
    finish(items, keep)
}

/// Exhaustive solver for testing (`2^n`; items must be few).
///
/// # Panics
///
/// Panics for more than 20 items.
pub fn solve_brute_force(items: &[KnapsackItem], capacity: u64) -> KnapsackSolution {
    assert!(items.len() <= 20, "brute force limited to 20 items");
    let mut best_mask = 0usize;
    let mut best_value = -1.0;
    for mask in 0..(1usize << items.len()) {
        let mut weight = 0u64;
        let mut value = 0.0;
        for (i, item) in items.iter().enumerate() {
            if mask & (1 << i) != 0 {
                weight += item.weight;
                value += item.value;
            }
        }
        if weight <= capacity && value > best_value {
            best_value = value;
            best_mask = mask;
        }
    }
    let keep: Vec<bool> = (0..items.len())
        .map(|i| best_mask & (1 << i) != 0)
        .collect();
    finish(items, keep)
}

fn density(item: &KnapsackItem) -> f64 {
    item.value / item.weight.max(1) as f64
}

fn finish(items: &[KnapsackItem], keep: Vec<bool>) -> KnapsackSolution {
    let total_value = items
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(it, _)| it.value)
        .sum();
    let total_weight = items
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(it, _)| it.weight)
        .sum();
    KnapsackSolution {
        keep,
        total_value,
        total_weight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(weight: u64, value: f64) -> KnapsackItem {
        KnapsackItem { weight, value }
    }

    #[test]
    fn exact_finds_optimum_on_classic_instance() {
        // Classic: capacity 10, optimal is items 1+2 (values 10+7).
        let items = [item(6, 10.0), item(4, 7.0), item(5, 8.0), item(3, 4.0)];
        let sol = solve_exact(&items, 10, 1);
        assert_eq!(sol.keep, vec![true, true, false, false]);
        assert_eq!(sol.total_value, 17.0);
        assert_eq!(sol.total_weight, 10);
    }

    #[test]
    fn exact_matches_brute_force_on_many_instances() {
        // Deterministic pseudo-random instances.
        let mut state = 12345u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..50 {
            let n = (next() % 10 + 2) as usize;
            let items: Vec<KnapsackItem> = (0..n)
                .map(|_| item(next() % 50 + 1, (next() % 100) as f64))
                .collect();
            let capacity = next() % 120 + 10;
            let exact = solve_exact(&items, capacity, 1);
            let brute = solve_brute_force(&items, capacity);
            assert!(
                (exact.total_value - brute.total_value).abs() < 1e-9,
                "exact {} != brute {} on {items:?} cap {capacity}",
                exact.total_value,
                brute.total_value
            );
            assert!(exact.total_weight <= capacity);
        }
    }

    #[test]
    fn exact_matches_brute_force_with_coarse_granularity() {
        // Cross-check `solve_exact` at granularity > 1 on random instances.
        // The DP solves the *rounded* instance (weights rounded up to
        // granularity units) exactly, so it must (a) never exceed the byte
        // capacity, (b) never beat the true byte-resolution optimum, and
        // (c) exactly match a brute-force solve of the rounded instance.
        let mut state = 987654321u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for granularity in [7u64, 64, 1000] {
            for _ in 0..25 {
                let n = (next() % 9 + 2) as usize;
                let items: Vec<KnapsackItem> = (0..n)
                    .map(|_| item(next() % 5000 + 1, (next() % 100) as f64))
                    .collect();
                let capacity = next() % 12_000 + 500;
                let exact = solve_exact(&items, capacity, granularity);

                assert!(
                    exact.total_weight <= capacity,
                    "capacity exceeded: {} > {capacity} (granularity {granularity})",
                    exact.total_weight
                );

                let brute_bytes = solve_brute_force(&items, capacity);
                assert!(
                    exact.total_value <= brute_bytes.total_value + 1e-9,
                    "coarse DP {} beat byte-optimal {} on {items:?}",
                    exact.total_value,
                    brute_bytes.total_value
                );

                let rounded: Vec<KnapsackItem> = items
                    .iter()
                    .map(|it| item(it.weight.div_ceil(granularity) * granularity, it.value))
                    .collect();
                let brute_rounded =
                    solve_brute_force(&rounded, (capacity / granularity) * granularity);
                assert!(
                    (exact.total_value - brute_rounded.total_value).abs() < 1e-9,
                    "DP {} != rounded-instance optimum {} on {items:?} \
                     cap {capacity} granularity {granularity}",
                    exact.total_value,
                    brute_rounded.total_value
                );
            }
        }
    }

    #[test]
    fn granularity_rounds_weights_up() {
        // Item of 1001 bytes at granularity 1000 occupies 2 units; with
        // capacity 1999 (1 unit) it cannot fit.
        let items = [item(1001, 5.0)];
        let sol = solve_exact(&items, 1999, 1000);
        assert_eq!(sol.keep, vec![false]);
        // With capacity 2000 (2 units) it fits.
        let sol = solve_exact(&items, 2000, 1000);
        assert_eq!(sol.keep, vec![true]);
    }

    #[test]
    fn capacity_never_exceeded_with_granularity() {
        let items = [item(900, 1.0), item(900, 1.0), item(900, 1.0)];
        let sol = solve_exact(&items, 2000, 1024);
        assert!(sol.total_weight <= 2000, "weight {}", sol.total_weight);
    }

    #[test]
    fn zero_capacity_keeps_nothing() {
        let items = [item(1, 100.0)];
        let sol = solve_exact(&items, 0, 1);
        assert_eq!(sol.keep, vec![false]);
        assert_eq!(sol.total_value, 0.0);
    }

    #[test]
    fn empty_items_are_fine() {
        let sol = solve_exact(&[], 100, 1);
        assert!(sol.keep.is_empty());
        let sol = solve_greedy(&[], 100);
        assert!(sol.keep.is_empty());
    }

    #[test]
    fn greedy_respects_capacity_and_is_reasonable() {
        let items = [item(6, 10.0), item(4, 7.0), item(5, 8.0), item(3, 4.0)];
        let sol = solve_greedy(&items, 10);
        assert!(sol.total_weight <= 10);
        // Greedy by density picks 4/7.0 (1.75) then 6/10.0 (1.67) = 17.
        assert_eq!(sol.total_value, 17.0);
    }

    #[test]
    fn greedy_never_beats_exact() {
        let items = [item(5, 5.0), item(5, 5.0), item(9, 9.5)];
        let exact = solve_exact(&items, 10, 1);
        let greedy = solve_greedy(&items, 10);
        assert!(greedy.total_value <= exact.total_value + 1e-9);
    }

    #[test]
    #[should_panic(expected = "granularity")]
    fn zero_granularity_rejected() {
        let _ = solve_exact(&[], 10, 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_values_rejected() {
        let _ = solve_exact(&[item(1, -1.0)], 10, 1);
    }
}
