//! 0/1 knapsack solvers used by PACM's eviction step (the paper's Eq. 2).
//!
//! PACM keeps the subset of cached objects that maximizes total utility
//! subject to the post-insertion capacity. The exact dynamic program runs in
//! `O(items × capacity_units)`; a value-density greedy serves as the
//! fallback for unusually large instances and as an ablation baseline.

/// One candidate object for the keep-set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnapsackItem {
    /// Size in bytes (`s_d`).
    pub weight: u64,
    /// Utility (`U_d`); must be non-negative and finite.
    pub value: f64,
}

/// Solution of a knapsack instance.
#[derive(Debug, Clone, PartialEq)]
pub struct KnapsackSolution {
    /// `keep[i]` is true when item `i` stays in the cache.
    pub keep: Vec<bool>,
    /// Total utility of the kept set.
    pub total_value: f64,
    /// Total bytes of the kept set.
    pub total_weight: u64,
}

/// Reusable scratch state for [`solve_exact_in`].
///
/// The DP row, the choice matrix and the per-item weight/bound buffers are
/// kept between calls, so after warm-up a solve performs zero heap
/// allocations. The choice matrix is bitset-backed (`Vec<u64>` words, one
/// bit per `(item, capacity)` cell) — 8× smaller than the seed's
/// `Vec<bool>`, which both cuts the clearing cost and keeps more of the
/// backtrack working set in cache.
#[derive(Debug, Default)]
pub struct KnapsackWorkspace {
    /// `dp[w]` = best value with capacity `w` units.
    dp: Vec<f64>,
    /// Bitset choice matrix, `words_per_row` words per item.
    choice: Vec<u64>,
    /// Rounded item weights (units).
    weights: Vec<usize>,
    /// Per-item prefix-weight clamp for the inner loop and backtrack.
    bounds: Vec<usize>,
    /// Keep flags of the most recent solve.
    keep: Vec<bool>,
    /// Buffer-growth events (see [`Self::allocations`]).
    grown: u64,
}

impl KnapsackWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Keep flags left behind by the most recent [`solve_exact_in`] call.
    pub fn keep(&self) -> &[bool] {
        &self.keep
    }

    /// Cumulative count of buffer-growth (reallocation) events. Stays flat
    /// once the workspace has seen its largest instance — the microbench
    /// asserts zero growth after warm-up.
    pub fn allocations(&self) -> u64 {
        self.grown
    }

    /// Clears and resizes `buf` to `len`, counting capacity growth.
    fn reset<T: Clone>(buf: &mut Vec<T>, len: usize, fill: T, grown: &mut u64) {
        if buf.capacity() < len {
            *grown += 1;
        }
        buf.clear();
        buf.resize(len, fill);
    }
}

/// Exact DP solver.
///
/// `granularity` (bytes per DP unit, e.g. 1024) bounds the table size; item
/// weights are rounded *up* to units so the byte capacity is never exceeded.
///
/// # Panics
///
/// Panics if `granularity` is zero or any value is negative/non-finite.
pub fn solve_exact(items: &[KnapsackItem], capacity: u64, granularity: u64) -> KnapsackSolution {
    let mut ws = KnapsackWorkspace::new();
    solve_exact_in(&mut ws, items, capacity, granularity);
    finish(items, ws.keep.clone())
}

/// Exact DP solver writing into a reusable [`KnapsackWorkspace`].
///
/// Semantically identical to [`solve_exact`] — it computes the same keep
/// set, bit for bit (the `pacm_equivalence` property tests pin this against
/// the frozen seed implementation) — but leaves the keep flags in
/// `ws.keep()` instead of allocating a solution, and reuses the workspace
/// buffers across calls. Returns `(total_value, total_weight)` of the kept
/// set, summed in item order.
///
/// Three exact optimizations over the seed DP:
///
/// * the inner loop and the backtrack are clamped to the running
///   prefix-weight sum (cells above it hold a value plateau the seed never
///   reads back),
/// * the inner loop is also clamped from below to
///   `target − suffix_weight`, where `target = min(units, total_weight)`
///   is where the backtrack starts: the walk position at item `i` is
///   always ≥ `target − suffix_i` (each taken item `j > i` moves it down
///   by exactly `w_j ≤ suffix` — the clamped read position included), so
///   cells below that band are never read back, by the backtrack or by a
///   later item's `dp[w − w_j]` recurrence (`lower_{i−1} = lower_i − w_i`
///   keeps the bands nested). For eviction workloads — store nearly full,
///   capacity slightly reduced — this shrinks the table from
///   `O(n × units)` to `O(n × (total_weight − units))`, and
/// * the choice matrix is a bitset.
///
/// # Panics
///
/// Panics if `granularity` is zero or any value is negative/non-finite.
pub fn solve_exact_in(
    ws: &mut KnapsackWorkspace,
    items: &[KnapsackItem],
    capacity: u64,
    granularity: u64,
) -> (f64, u64) {
    assert!(granularity > 0, "granularity must be positive");
    for it in items {
        assert!(
            it.value.is_finite() && it.value >= 0.0,
            "item values must be non-negative and finite"
        );
    }
    let units = (capacity / granularity) as usize;
    let n = items.len();
    let words_per_row = (units + 1).div_ceil(64);

    let grown = &mut ws.grown;
    KnapsackWorkspace::reset(&mut ws.dp, units + 1, 0.0f64, grown);
    KnapsackWorkspace::reset(&mut ws.choice, n * words_per_row, 0u64, grown);
    KnapsackWorkspace::reset(&mut ws.weights, n, 0usize, grown);
    KnapsackWorkspace::reset(&mut ws.bounds, n, 0usize, grown);
    KnapsackWorkspace::reset(&mut ws.keep, n, false, grown);

    // Rounded weights and the total of the items that can enter the DP at
    // all (the seed skips weights beyond the whole table, so they carry no
    // suffix weight either).
    let mut total = 0usize;
    for (i, item) in items.iter().enumerate() {
        let wi = (item.weight.div_ceil(granularity)) as usize;
        ws.weights[i] = wi;
        if wi <= units {
            total += wi;
        }
    }

    // Forward DP. `prefix` is the clamped sum of processed item weights:
    // in the seed every dp cell above it holds the same value plateau
    // (all processed items fit within `prefix`), so restricting updates to
    // `[wi, prefix]` loses nothing — provided cells entering the range as
    // the prefix grows are first raised to the plateau, which is exactly
    // what the seed would have stored there. `lower` is the suffix clamp
    // described above: the backtrack can only ever read cells in
    // `[target − remaining, prefix]`.
    let target = units.min(total);
    let mut prefix = 0usize;
    let mut remaining = total;
    for (i, item) in items.iter().enumerate() {
        let wi = ws.weights[i];
        if wi > units {
            continue;
        }
        remaining -= wi;
        let lower = target.saturating_sub(remaining);
        let grown_prefix = units.min(prefix.saturating_add(wi));
        let plateau = ws.dp[prefix];
        for w in prefix + 1..=grown_prefix {
            ws.dp[w] = plateau;
        }
        prefix = grown_prefix;
        ws.bounds[i] = prefix;
        let row = i * words_per_row;
        for w in (wi.max(lower)..=prefix).rev() {
            let candidate = ws.dp[w - wi] + item.value;
            if candidate > ws.dp[w] {
                ws.dp[w] = candidate;
                ws.choice[row + (w >> 6)] |= 1u64 << (w & 63);
            }
        }
    }

    // Walk choices backwards to recover the kept set. Clamping the read
    // position to each item's prefix bound reproduces the seed's walk
    // exactly: for any `w` past the bound the seed's decision row is
    // constant, equal to the decision at the bound.
    let mut w = units;
    for i in (0..n).rev() {
        let wi = ws.weights[i];
        if wi > units {
            continue;
        }
        let wc = w.min(ws.bounds[i]);
        if ws.choice[i * words_per_row + (wc >> 6)] >> (wc & 63) & 1 == 1 {
            ws.keep[i] = true;
            w = wc - wi;
        }
    }

    let total_value = items
        .iter()
        .zip(&ws.keep)
        .filter(|(_, &k)| k)
        .map(|(it, _)| it.value)
        .sum();
    let total_weight = items
        .iter()
        .zip(&ws.keep)
        .filter(|(_, &k)| k)
        .map(|(it, _)| it.weight)
        .sum();
    (total_value, total_weight)
}

/// Greedy value-density solver (higher `value/weight` first).
///
/// Provides a fast approximation and the ablation point for
/// "knapsack-DP vs greedy" in `DESIGN.md`. Equal-density items order by
/// ascending input index — explicitly, not as a stable-sort accident — so
/// the ablation baseline is deterministic by construction.
pub fn solve_greedy(items: &[KnapsackItem], capacity: u64) -> KnapsackSolution {
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| {
        let da = density(&items[a]);
        let db = density(&items[b]);
        db.partial_cmp(&da)
            .expect("finite densities")
            .then(a.cmp(&b))
    });
    let mut keep = vec![false; items.len()];
    let mut used = 0u64;
    for i in order {
        if used + items[i].weight <= capacity {
            keep[i] = true;
            used += items[i].weight;
        }
    }
    finish(items, keep)
}

/// Exhaustive solver for testing (`2^n`; items must be few).
///
/// # Panics
///
/// Panics for more than 20 items.
pub fn solve_brute_force(items: &[KnapsackItem], capacity: u64) -> KnapsackSolution {
    assert!(items.len() <= 20, "brute force limited to 20 items");
    let mut best_mask = 0usize;
    let mut best_value = -1.0;
    for mask in 0..(1usize << items.len()) {
        let mut weight = 0u64;
        let mut value = 0.0;
        for (i, item) in items.iter().enumerate() {
            if mask & (1 << i) != 0 {
                weight += item.weight;
                value += item.value;
            }
        }
        if weight <= capacity && value > best_value {
            best_value = value;
            best_mask = mask;
        }
    }
    let keep: Vec<bool> = (0..items.len())
        .map(|i| best_mask & (1 << i) != 0)
        .collect();
    finish(items, keep)
}

fn density(item: &KnapsackItem) -> f64 {
    item.value / item.weight.max(1) as f64
}

fn finish(items: &[KnapsackItem], keep: Vec<bool>) -> KnapsackSolution {
    let total_value = items
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(it, _)| it.value)
        .sum();
    let total_weight = items
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(it, _)| it.weight)
        .sum();
    KnapsackSolution {
        keep,
        total_value,
        total_weight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(weight: u64, value: f64) -> KnapsackItem {
        KnapsackItem { weight, value }
    }

    #[test]
    fn exact_finds_optimum_on_classic_instance() {
        // Classic: capacity 10, optimal is items 1+2 (values 10+7).
        let items = [item(6, 10.0), item(4, 7.0), item(5, 8.0), item(3, 4.0)];
        let sol = solve_exact(&items, 10, 1);
        assert_eq!(sol.keep, vec![true, true, false, false]);
        assert_eq!(sol.total_value, 17.0);
        assert_eq!(sol.total_weight, 10);
    }

    #[test]
    fn exact_matches_brute_force_on_many_instances() {
        // Deterministic pseudo-random instances.
        let mut state = 12345u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..50 {
            let n = (next() % 10 + 2) as usize;
            let items: Vec<KnapsackItem> = (0..n)
                .map(|_| item(next() % 50 + 1, (next() % 100) as f64))
                .collect();
            let capacity = next() % 120 + 10;
            let exact = solve_exact(&items, capacity, 1);
            let brute = solve_brute_force(&items, capacity);
            assert!(
                (exact.total_value - brute.total_value).abs() < 1e-9,
                "exact {} != brute {} on {items:?} cap {capacity}",
                exact.total_value,
                brute.total_value
            );
            assert!(exact.total_weight <= capacity);
        }
    }

    #[test]
    fn exact_matches_brute_force_with_coarse_granularity() {
        // Cross-check `solve_exact` at granularity > 1 on random instances.
        // The DP solves the *rounded* instance (weights rounded up to
        // granularity units) exactly, so it must (a) never exceed the byte
        // capacity, (b) never beat the true byte-resolution optimum, and
        // (c) exactly match a brute-force solve of the rounded instance.
        let mut state = 987654321u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for granularity in [7u64, 64, 1000] {
            for _ in 0..25 {
                let n = (next() % 9 + 2) as usize;
                let items: Vec<KnapsackItem> = (0..n)
                    .map(|_| item(next() % 5000 + 1, (next() % 100) as f64))
                    .collect();
                let capacity = next() % 12_000 + 500;
                let exact = solve_exact(&items, capacity, granularity);

                assert!(
                    exact.total_weight <= capacity,
                    "capacity exceeded: {} > {capacity} (granularity {granularity})",
                    exact.total_weight
                );

                let brute_bytes = solve_brute_force(&items, capacity);
                assert!(
                    exact.total_value <= brute_bytes.total_value + 1e-9,
                    "coarse DP {} beat byte-optimal {} on {items:?}",
                    exact.total_value,
                    brute_bytes.total_value
                );

                let rounded: Vec<KnapsackItem> = items
                    .iter()
                    .map(|it| item(it.weight.div_ceil(granularity) * granularity, it.value))
                    .collect();
                let brute_rounded =
                    solve_brute_force(&rounded, (capacity / granularity) * granularity);
                assert!(
                    (exact.total_value - brute_rounded.total_value).abs() < 1e-9,
                    "DP {} != rounded-instance optimum {} on {items:?} \
                     cap {capacity} granularity {granularity}",
                    exact.total_value,
                    brute_rounded.total_value
                );
            }
        }
    }

    #[test]
    fn granularity_rounds_weights_up() {
        // Item of 1001 bytes at granularity 1000 occupies 2 units; with
        // capacity 1999 (1 unit) it cannot fit.
        let items = [item(1001, 5.0)];
        let sol = solve_exact(&items, 1999, 1000);
        assert_eq!(sol.keep, vec![false]);
        // With capacity 2000 (2 units) it fits.
        let sol = solve_exact(&items, 2000, 1000);
        assert_eq!(sol.keep, vec![true]);
    }

    #[test]
    fn capacity_never_exceeded_with_granularity() {
        let items = [item(900, 1.0), item(900, 1.0), item(900, 1.0)];
        let sol = solve_exact(&items, 2000, 1024);
        assert!(sol.total_weight <= 2000, "weight {}", sol.total_weight);
    }

    #[test]
    fn zero_capacity_keeps_nothing() {
        let items = [item(1, 100.0)];
        let sol = solve_exact(&items, 0, 1);
        assert_eq!(sol.keep, vec![false]);
        assert_eq!(sol.total_value, 0.0);
    }

    #[test]
    fn empty_items_are_fine() {
        let sol = solve_exact(&[], 100, 1);
        assert!(sol.keep.is_empty());
        let sol = solve_greedy(&[], 100);
        assert!(sol.keep.is_empty());
    }

    #[test]
    fn greedy_respects_capacity_and_is_reasonable() {
        let items = [item(6, 10.0), item(4, 7.0), item(5, 8.0), item(3, 4.0)];
        let sol = solve_greedy(&items, 10);
        assert!(sol.total_weight <= 10);
        // Greedy by density picks 4/7.0 (1.75) then 6/10.0 (1.67) = 17.
        assert_eq!(sol.total_value, 17.0);
    }

    #[test]
    fn greedy_never_beats_exact() {
        let items = [item(5, 5.0), item(5, 5.0), item(9, 9.5)];
        let exact = solve_exact(&items, 10, 1);
        let greedy = solve_greedy(&items, 10);
        assert!(greedy.total_value <= exact.total_value + 1e-9);
    }

    #[test]
    #[should_panic(expected = "granularity")]
    fn zero_granularity_rejected() {
        let _ = solve_exact(&[], 10, 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_values_rejected() {
        let _ = solve_exact(&[item(1, -1.0)], 10, 1);
    }

    #[test]
    fn greedy_breaks_density_ties_by_index() {
        // Four items with identical density; only the first two fit.
        let items = [item(5, 5.0), item(5, 5.0), item(5, 5.0), item(5, 5.0)];
        let sol = solve_greedy(&items, 10);
        assert_eq!(sol.keep, vec![true, true, false, false]);
        // Zero-weight/zero-value corner: density ties at 0 resolve by index.
        let items = [item(0, 0.0), item(0, 0.0)];
        let sol = solve_greedy(&items, 0);
        assert_eq!(sol.keep, vec![true, true]);
    }

    #[test]
    fn workspace_reuse_allocates_once() {
        let mut ws = KnapsackWorkspace::new();
        let big = items_random(64, 1);
        solve_exact_in(&mut ws, &big, 50_000, 64);
        let grown = ws.allocations();
        assert!(grown > 0);
        // Same-or-smaller instances must not grow any buffer again.
        for seed in 2..10 {
            let next = items_random(64, seed);
            solve_exact_in(&mut ws, &next, 50_000, 64);
            let small = items_random(8, seed);
            solve_exact_in(&mut ws, &small, 9_000, 64);
        }
        assert_eq!(
            ws.allocations(),
            grown,
            "workspace reallocated after warm-up"
        );
    }

    #[test]
    fn workspace_totals_match_solution() {
        let items = items_random(40, 3);
        let mut ws = KnapsackWorkspace::new();
        let (value, weight) = solve_exact_in(&mut ws, &items, 60_000, 128);
        let sol = solve_exact(&items, 60_000, 128);
        assert_eq!(ws.keep(), sol.keep.as_slice());
        assert_eq!(value, sol.total_value);
        assert_eq!(weight, sol.total_weight);
    }

    #[test]
    fn workspace_matches_brute_force_with_granularity() {
        let mut state = 55u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut ws = KnapsackWorkspace::new();
        for granularity in [1u64, 7, 250] {
            for _ in 0..25 {
                let n = (next() % 10 + 1) as usize;
                let items: Vec<KnapsackItem> = (0..n)
                    .map(|_| item(next() % 4000 + 1, (next() % 50) as f64))
                    .collect();
                let capacity = next() % 9_000 + 100;
                let (value, weight) = solve_exact_in(&mut ws, &items, capacity, granularity);
                assert!(weight <= capacity);
                let rounded: Vec<KnapsackItem> = items
                    .iter()
                    .map(|it| item(it.weight.div_ceil(granularity) * granularity, it.value))
                    .collect();
                let brute = solve_brute_force(&rounded, (capacity / granularity) * granularity);
                assert!(
                    (value - brute.total_value).abs() < 1e-9,
                    "workspace DP {value} != rounded optimum {} on {items:?} \
                     cap {capacity} granularity {granularity}",
                    brute.total_value
                );
            }
        }
    }

    #[test]
    fn suffix_clamp_matches_seed_dp_in_both_regimes() {
        // Eviction-shaped (total weight ≫ capacity, the band is narrow)
        // and everything-fits (total weight < capacity, the backtrack
        // starts below the table top): both must reproduce the seed DP
        // bit for bit.
        let mut ws = KnapsackWorkspace::new();
        for (n, cap) in [(120usize, 3_000u64), (60, 500_000)] {
            let items = items_random(n, 77);
            let (value, _) = solve_exact_in(&mut ws, &items, cap, 64);
            let seed = crate::reference::solve_exact_seed(&items, cap, 64);
            assert_eq!(ws.keep(), seed.keep.as_slice(), "n={n} cap={cap}");
            assert_eq!(value.to_bits(), seed.total_value.to_bits());
        }
    }

    fn items_random(n: usize, seed: u64) -> Vec<KnapsackItem> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        (0..n)
            .map(|_| item(next() % 3000 + 1, (next() % 1000) as f64 / 8.0))
            .collect()
    }
}
