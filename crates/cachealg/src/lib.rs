//! # ape-cachealg — APE-CACHE cache-management algorithms
//!
//! The cache layer of the reproduction, isolated from the network simulator
//! so every policy decision is unit-testable:
//!
//! * [`CacheStore`] — the AP's bounded object cache with TTL expiry and the
//!   paper's 500 KB block list,
//! * [`PacmPolicy`] — Priority-Aware Cache Management (§IV-C): utility
//!   `U_d = R(A_d)·e_d·l_d·p_d`, an exact knapsack keep-set, and a Gini
//!   fairness bound on per-app storage efficiency,
//! * [`LruPolicy`] — the baseline used by Wi-Cache and APE-CACHE-LRU,
//! * [`CacheManager`] — store + policy, the AP's cache-management module.
//!
//! ## Example
//!
//! ```
//! use ape_cachealg::{
//!     AdmitOutcome, AppId, CacheManager, CacheStore, Lookup, ObjectMeta, PacmConfig,
//!     PacmPolicy, Priority,
//! };
//! use ape_dnswire::UrlHash;
//! use ape_simnet::{SimDuration, SimTime};
//!
//! let mut manager = CacheManager::new(
//!     CacheStore::new(5_000_000, 500_000),
//!     PacmPolicy::new(PacmConfig::default()),
//! );
//! let meta = ObjectMeta {
//!     key: UrlHash::of("http://api.movie.example/thumb?id=42"),
//!     app: AppId::new(1),
//!     size: 80_000,
//!     priority: Priority::HIGH,
//!     expires_at: SimTime::from_secs(1800),
//!     fetch_latency: SimDuration::from_millis(35),
//! };
//! assert!(matches!(
//!     manager.admit(meta.clone(), SimTime::ZERO),
//!     AdmitOutcome::Stored { .. }
//! ));
//! assert_eq!(manager.lookup(meta.key, SimTime::from_secs(1)), Lookup::Hit);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod freq;
mod gini;
mod knapsack;
mod lru;
mod object;
mod pacm;
mod policy;
pub mod reference;
mod store;

pub use freq::FrequencyTracker;
pub use gini::{gini, gini_in_place, gini_naive};
pub use knapsack::{
    solve_brute_force, solve_exact, solve_exact_in, solve_greedy, KnapsackItem, KnapsackSolution,
    KnapsackWorkspace,
};
pub use lru::LruPolicy;
pub use object::{AppId, ObjectMeta, Priority};
pub use pacm::{EvictStats, PacmConfig, PacmPolicy};
pub use policy::{AdmitOutcome, CacheManager, EvictionPolicy};
pub use store::{CacheStore, Entry, Lookup};
