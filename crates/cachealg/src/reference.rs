//! Frozen seed implementations of the PACM eviction path.
//!
//! This module preserves, verbatim, the pre-optimization `solve_exact` DP
//! and `PacmPolicy::select_victims` (knapsack + fairness repair) exactly as
//! they shipped in the seed. They are **not** used by the simulator; they
//! exist as
//!
//! * the equivalence oracle for the `pacm_equivalence` property tests,
//!   which assert the optimized engine returns byte-identical victim sets,
//!   and
//! * the baseline timed by `repro bench-evict`, so the reported speedup is
//!   measured against the real seed code rather than a reconstruction.
//!
//! Do not "improve" this code; its value is that it never changes.

use std::collections::BTreeMap;

use ape_dnswire::UrlHash;
use ape_simnet::SimTime;

use crate::freq::FrequencyTracker;
use crate::gini::gini;
use crate::knapsack::{solve_greedy, KnapsackItem, KnapsackSolution};
use crate::object::{AppId, ObjectMeta};
use crate::pacm::PacmConfig;
use crate::store::CacheStore;

/// The seed's exact DP solver, with the full `Vec<bool>` choice matrix and
/// no prefix clamping. Allocates `O(items × capacity_units)` per call.
pub fn solve_exact_seed(
    items: &[KnapsackItem],
    capacity: u64,
    granularity: u64,
) -> KnapsackSolution {
    assert!(granularity > 0, "granularity must be positive");
    for it in items {
        assert!(
            it.value.is_finite() && it.value >= 0.0,
            "item values must be non-negative and finite"
        );
    }
    let units = (capacity / granularity) as usize;
    let weights: Vec<usize> = items
        .iter()
        .map(|it| (it.weight.div_ceil(granularity)) as usize)
        .collect();

    // dp[w] = best value with capacity w; choice[i][w] = item i taken at w.
    let mut dp = vec![0.0f64; units + 1];
    let mut choice = vec![false; items.len() * (units + 1)];
    for (i, item) in items.iter().enumerate() {
        let wi = weights[i];
        if wi > units {
            continue;
        }
        for w in (wi..=units).rev() {
            let candidate = dp[w - wi] + item.value;
            if candidate > dp[w] {
                dp[w] = candidate;
                choice[i * (units + 1) + w] = true;
            }
        }
    }

    // Walk choices backwards to recover the kept set.
    let mut keep = vec![false; items.len()];
    let mut w = units;
    for i in (0..items.len()).rev() {
        if choice[i * (units + 1) + w] {
            keep[i] = true;
            w -= weights[i];
        }
    }
    let total_value = items
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(it, _)| it.value)
        .sum();
    let total_weight = items
        .iter()
        .zip(&keep)
        .filter(|(_, &k)| k)
        .map(|(it, _)| it.weight)
        .sum();
    KnapsackSolution {
        keep,
        total_value,
        total_weight,
    }
}

/// The seed's PACM policy: full candidate re-enumeration, allocating DP,
/// and a fairness-repair loop that rebuilds the per-app map every
/// iteration.
#[derive(Debug)]
pub struct ReferencePacm {
    config: PacmConfig,
    freq: FrequencyTracker,
    fairness_enabled: bool,
}

/// Internal view of a cached object during selection.
#[derive(Debug, Clone)]
struct KeptObject {
    key: UrlHash,
    app: AppId,
    size: u64,
    utility: f64,
}

impl ReferencePacm {
    /// Creates a seed-faithful PACM policy.
    ///
    /// # Panics
    ///
    /// Panics if the config's `alpha` is outside `(0, 1]` or
    /// `fairness_theta` is negative.
    pub fn new(config: PacmConfig) -> Self {
        assert!(config.fairness_theta >= 0.0, "theta must be non-negative");
        ReferencePacm {
            freq: FrequencyTracker::new(config.alpha),
            config,
            fairness_enabled: true,
        }
    }

    /// Disables the fairness constraint (θ = ∞ ablation).
    pub fn without_fairness(mut self) -> Self {
        self.fairness_enabled = false;
        self
    }

    /// Observes one client request for `app`.
    pub fn note_request(&mut self, app: AppId) {
        self.freq.record(app);
    }

    /// Closes the current measurement window at `now`.
    pub fn roll_window(&mut self, now: SimTime) {
        self.freq.roll(now);
    }

    /// Utility `U_d` of an object at `now` under current frequencies.
    pub fn utility(&self, meta: &ObjectMeta, now: SimTime) -> f64 {
        let rate = self.freq.rate(meta.app).max(self.config.min_rate);
        let e_d = meta.remaining_ttl(now).as_secs_f64();
        let l_d = meta.fetch_latency.as_secs_f64();
        rate * e_d * l_d * meta.priority.get() as f64
    }

    fn clamped_rate(&self, app: AppId) -> f64 {
        self.freq.rate(app).max(self.config.min_rate)
    }

    /// Storage-efficiency Gini over a candidate kept set.
    fn fairness(&self, kept: &[&KeptObject]) -> f64 {
        let mut per_app: BTreeMap<AppId, f64> = BTreeMap::new();
        for obj in kept {
            *per_app.entry(obj.app).or_insert(0.0) += obj.size as f64;
        }
        let shares: Vec<f64> = per_app
            .iter()
            .map(|(app, bytes)| bytes / self.clamped_rate(*app))
            .collect();
        gini(&shares)
    }

    /// The seed's `select_victims`, byte for byte.
    pub fn select_victims(
        &mut self,
        store: &CacheStore,
        incoming: &ObjectMeta,
        now: SimTime,
    ) -> Vec<UrlHash> {
        // Candidates sorted by key: hash-map iteration order must not leak
        // into victim selection.
        let mut candidates: Vec<KeptObject> = store
            .iter()
            .map(|e| KeptObject {
                key: e.meta.key,
                app: e.meta.app,
                size: e.meta.size,
                utility: self.utility(&e.meta, now),
            })
            .collect();
        candidates.sort_by_key(|o| o.key);

        let capacity = store.capacity().saturating_sub(incoming.size);
        let items: Vec<KnapsackItem> = candidates
            .iter()
            .map(|o| KnapsackItem {
                weight: o.size,
                value: o.utility,
            })
            .collect();
        let solution = if candidates.len() <= self.config.max_dp_items {
            solve_exact_seed(&items, capacity, self.config.granularity)
        } else {
            solve_greedy(&items, capacity)
        };

        let mut kept: Vec<&KeptObject> = candidates
            .iter()
            .zip(&solution.keep)
            .filter(|(_, &k)| k)
            .map(|(o, _)| o)
            .collect();
        let mut victims: Vec<UrlHash> = candidates
            .iter()
            .zip(&solution.keep)
            .filter(|(_, &k)| !k)
            .map(|(o, _)| o.key)
            .collect();

        // Fairness repair: drop the cheapest object of the most over-served
        // app until F(A) ≤ θ (or only one app remains).
        if self.fairness_enabled {
            while self.fairness(&kept) > self.config.fairness_theta {
                let mut per_app: BTreeMap<AppId, f64> = Default::default();
                for obj in &kept {
                    *per_app.entry(obj.app).or_insert(0.0) += obj.size as f64;
                }
                if per_app.len() <= 1 {
                    break;
                }
                let worst_app = per_app
                    .iter()
                    .map(|(app, bytes)| (*app, bytes / self.clamped_rate(*app)))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite efficiency"))
                    .map(|(app, _)| app)
                    .expect("non-empty per_app");
                let Some(pos) = kept
                    .iter()
                    .enumerate()
                    .filter(|(_, o)| o.app == worst_app)
                    .min_by(|a, b| {
                        a.1.utility
                            .partial_cmp(&b.1.utility)
                            .expect("finite utility")
                            .then(a.1.key.cmp(&b.1.key))
                    })
                    .map(|(i, _)| i)
                else {
                    break;
                };
                victims.push(kept.remove(pos).key);
            }
        }
        victims
    }
}
