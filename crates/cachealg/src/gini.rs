//! Gini-coefficient fairness index (the paper's Eq. 1).
//!
//! PACM bounds the inequality of per-app *storage efficiency*
//! `C_a = Σ_{A_d = a} s_d / R(a)` with the Gini coefficient
//! `F(A) = Σ_x Σ_y |C_x − C_y| / (2·A·Σ_x C_x) ≤ θ`.

/// Computes the Gini coefficient of a set of non-negative shares.
///
/// Returns 0.0 for empty input, single elements, or an all-zero vector
/// (perfect equality by convention).
///
/// # Examples
///
/// ```
/// use ape_cachealg::gini;
///
/// assert_eq!(gini(&[5.0, 5.0, 5.0]), 0.0);          // perfect equality
/// assert!(gini(&[0.0, 0.0, 12.0]) > 0.6);           // strong inequality
/// ```
pub fn gini(shares: &[f64]) -> f64 {
    let mut sorted: Vec<f64> = shares.to_vec();
    gini_in_place(&mut sorted)
}

/// [`gini`] without the defensive copy: sorts `shares` in place.
///
/// The allocation-free form used on PACM's eviction hot path, where the
/// caller owns a reusable scratch buffer. The total is summed over the
/// *input* order before sorting, so the result is bit-identical to
/// [`gini`] on the same values.
pub fn gini_in_place(shares: &mut [f64]) -> f64 {
    let n = shares.len();
    if n <= 1 {
        return 0.0;
    }
    let total: f64 = shares.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    // O(n log n) via the sorted-form identity:
    // Σ_x Σ_y |C_x − C_y| = 2 Σ_i (2i − n + 1) · C_(i)  for sorted C.
    shares.sort_by(|a, b| a.partial_cmp(b).expect("non-finite share"));
    let pairwise: f64 = shares
        .iter()
        .enumerate()
        .map(|(i, c)| (2.0 * i as f64 - n as f64 + 1.0) * c)
        .sum::<f64>()
        * 2.0;
    pairwise / (2.0 * n as f64 * total)
}

/// Computes the Gini coefficient the quadratic way (for tests and tiny
/// inputs); exactly the paper's Eq. 1.
pub fn gini_naive(shares: &[f64]) -> f64 {
    let n = shares.len();
    if n <= 1 {
        return 0.0;
    }
    let total: f64 = shares.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut pairwise = 0.0;
    for x in shares {
        for y in shares {
            pairwise += (x - y).abs();
        }
    }
    pairwise / (2.0 * n as f64 * total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_is_zero() {
        assert_eq!(gini(&[3.0, 3.0, 3.0, 3.0]), 0.0);
    }

    #[test]
    fn empty_and_singleton_are_zero() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[7.0]), 0.0);
    }

    #[test]
    fn all_zero_is_zero() {
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn maximum_concentration_approaches_bound() {
        // One app holds everything: G = (n-1)/n.
        let g = gini(&[0.0, 0.0, 0.0, 10.0]);
        assert!((g - 0.75).abs() < 1e-9, "g={g}");
    }

    #[test]
    fn matches_naive_formula() {
        let cases: &[&[f64]] = &[
            &[1.0, 2.0, 3.0],
            &[0.5, 0.5, 9.0, 2.0],
            &[10.0, 0.0, 5.0, 5.0, 1.0],
            &[2.0, 2.0],
        ];
        for c in cases {
            assert!((gini(c) - gini_naive(c)).abs() < 1e-12, "mismatch on {c:?}");
        }
    }

    #[test]
    fn within_unit_interval() {
        let g = gini(&[1.0, 4.0, 0.0, 2.5, 7.0]);
        assert!((0.0..=1.0).contains(&g));
    }

    #[test]
    fn scale_invariant() {
        let a = gini(&[1.0, 2.0, 3.0]);
        let b = gini(&[100.0, 200.0, 300.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn in_place_matches_copying_form_bitwise() {
        let cases: &[&[f64]] = &[
            &[],
            &[7.0],
            &[0.0, 0.0],
            &[1.0, 2.0, 3.0],
            &[10.0, 0.0, 5.0, 5.0, 1.0],
            &[0.5, 0.5, 9.0, 2.0],
        ];
        for c in cases {
            let mut buf = c.to_vec();
            assert_eq!(
                gini(c).to_bits(),
                gini_in_place(&mut buf).to_bits(),
                "mismatch on {c:?}"
            );
        }
    }
}
