//! The eviction-policy abstraction and the cache manager combining a store
//! with a policy.

use ape_dnswire::UrlHash;
use ape_simnet::SimTime;

use crate::object::{AppId, ObjectMeta};
use crate::pacm::EvictStats;
use crate::store::{CacheStore, Lookup};

/// Chooses which cached objects to evict to admit an incoming object.
///
/// Implementations must be deterministic: given the same store state and
/// inputs they must return the same victims (the reproduction's determinism
/// tests rely on it).
///
/// `Send` is required so nodes owning a boxed policy can move between the
/// parallel experiment runner's worker threads.
pub trait EvictionPolicy: std::fmt::Debug + Send {
    /// Short policy name for reports ("pacm", "lru").
    fn name(&self) -> &'static str;

    /// Observes one client request for `app` (PACM's frequency signal).
    fn note_request(&mut self, _app: AppId) {}

    /// Closes the current measurement window at `now` (PACM's EWMA roll).
    fn roll_window(&mut self, _now: SimTime) {}

    /// Observes an object entering the store. [`CacheManager`] calls this
    /// for every insert so policies can maintain incremental aggregates
    /// (PACM's per-app byte totals). Purely an optimization hook: policies
    /// must stay correct when the store is mutated without it (PACM
    /// fingerprints the store and rescans on mismatch).
    fn note_insert(&mut self, _meta: &ObjectMeta) {}

    /// Observes an object leaving the store (eviction, expiry purge,
    /// replacement, or block-listing). Same contract as [`note_insert`].
    ///
    /// [`note_insert`]: EvictionPolicy::note_insert
    fn note_remove(&mut self, _meta: &ObjectMeta) {}

    /// Cumulative eviction-engine counters, when the policy keeps them
    /// (PACM does; LRU and test policies return `None`).
    fn evict_stats(&self) -> Option<EvictStats> {
        None
    }

    /// Returns the keys to evict so that `incoming` fits. Implementations
    /// may assume expired entries were already purged. Must return victims
    /// whose combined size, plus current free space, covers
    /// `incoming.size`; returning fewer makes the admission fail safely.
    fn select_victims(
        &mut self,
        store: &CacheStore,
        incoming: &ObjectMeta,
        now: SimTime,
    ) -> Vec<UrlHash>;
}

impl<P: EvictionPolicy + ?Sized> EvictionPolicy for Box<P> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn note_request(&mut self, app: AppId) {
        (**self).note_request(app);
    }
    fn roll_window(&mut self, now: SimTime) {
        (**self).roll_window(now);
    }
    fn note_insert(&mut self, meta: &ObjectMeta) {
        (**self).note_insert(meta);
    }
    fn note_remove(&mut self, meta: &ObjectMeta) {
        (**self).note_remove(meta);
    }
    fn evict_stats(&self) -> Option<EvictStats> {
        (**self).evict_stats()
    }
    fn select_victims(
        &mut self,
        store: &CacheStore,
        incoming: &ObjectMeta,
        now: SimTime,
    ) -> Vec<UrlHash> {
        (**self).select_victims(store, incoming, now)
    }
}

/// Outcome of trying to admit a delegated object into the AP cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitOutcome {
    /// Object cached; lists what was evicted to make room.
    Stored {
        /// Keys evicted by the policy (empty when the object fit).
        evicted: Vec<UrlHash>,
    },
    /// Object exceeded the block-list threshold (or can never fit) and was
    /// added to the block list; future lookups return `Cache-Miss`.
    Blocked,
    /// The policy declined to make enough room; the object is not cached
    /// but remains delegable next time.
    Declined,
}

/// A cache store paired with an eviction policy — the AP's "cache
/// management module" (paper §IV, Fig. 5).
#[derive(Debug)]
pub struct CacheManager<P> {
    store: CacheStore,
    policy: P,
}

impl<P: EvictionPolicy> CacheManager<P> {
    /// Creates a manager over a fresh store.
    pub fn new(store: CacheStore, policy: P) -> Self {
        CacheManager { store, policy }
    }

    /// The policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Read access to the underlying store.
    pub fn store(&self) -> &CacheStore {
        &self.store
    }

    /// The policy (e.g. to inspect PACM state in tests).
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Observes one client request for `app`.
    pub fn note_request(&mut self, app: AppId) {
        self.policy.note_request(app);
    }

    /// Closes the frequency window at `now`.
    pub fn roll_window(&mut self, now: SimTime) {
        self.policy.roll_window(now);
    }

    /// Classifies `key`, bumping recency on hits.
    pub fn lookup(&mut self, key: UrlHash, now: SimTime) -> Lookup {
        self.store.lookup(key, now)
    }

    /// Classifies `key` without mutating state.
    pub fn peek(&self, key: UrlHash, now: SimTime) -> Lookup {
        self.store.peek(key, now)
    }

    /// Admits a freshly delegated object, evicting per policy when needed.
    pub fn admit(&mut self, meta: ObjectMeta, now: SimTime) -> AdmitOutcome {
        if self.store.exceeds_block_threshold(meta.size) || meta.size > self.store.capacity() {
            if let Some(old) = self.store.get(meta.key) {
                let old_meta = old.meta.clone();
                self.policy.note_remove(&old_meta);
            }
            self.store.block(meta.key);
            return AdmitOutcome::Blocked;
        }
        // Expired entries are dead weight; reclaim them before consulting
        // the policy so its view matches reality.
        for purged in self.store.purge_expired(now) {
            self.policy.note_remove(&purged);
        }
        let mut evicted = Vec::new();
        if self.store.free() < meta.size {
            let victims = self.policy.select_victims(&self.store, &meta, now);
            for key in victims {
                if let Some(entry) = self.store.remove(key) {
                    self.policy.note_remove(&entry.meta);
                    evicted.push(key);
                }
            }
            if self.store.free() < meta.size {
                return AdmitOutcome::Declined;
            }
        }
        if let Some(old) = self.store.get(meta.key) {
            let old_meta = old.meta.clone();
            self.policy.note_remove(&old_meta);
        }
        self.policy.note_insert(&meta);
        self.store.insert(meta, now);
        AdmitOutcome::Stored { evicted }
    }

    /// Drops expired objects, returning their metadata in key order.
    pub fn purge_expired(&mut self, now: SimTime) -> Vec<ObjectMeta> {
        let purged = self.store.purge_expired(now);
        for meta in &purged {
            self.policy.note_remove(meta);
        }
        purged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::Priority;
    use ape_simnet::SimDuration;

    /// Evicts nothing, ever.
    #[derive(Debug)]
    struct NeverEvict;
    impl EvictionPolicy for NeverEvict {
        fn name(&self) -> &'static str {
            "never"
        }
        fn select_victims(&mut self, _: &CacheStore, _: &ObjectMeta, _: SimTime) -> Vec<UrlHash> {
            Vec::new()
        }
    }

    /// Evicts everything.
    #[derive(Debug)]
    struct EvictAll;
    impl EvictionPolicy for EvictAll {
        fn name(&self) -> &'static str {
            "all"
        }
        fn select_victims(
            &mut self,
            store: &CacheStore,
            _: &ObjectMeta,
            _: SimTime,
        ) -> Vec<UrlHash> {
            store.keys().collect()
        }
    }

    fn meta(url: &str, size: u64, expires_s: u64) -> ObjectMeta {
        ObjectMeta {
            key: UrlHash::of(url),
            app: AppId::new(1),
            size,
            priority: Priority::LOW,
            expires_at: SimTime::from_secs(expires_s),
            fetch_latency: SimDuration::from_millis(25),
        }
    }

    #[test]
    fn admit_without_pressure_evicts_nothing() {
        let mut m = CacheManager::new(CacheStore::new(1000, 500), NeverEvict);
        let out = m.admit(meta("a", 100, 60), SimTime::ZERO);
        assert_eq!(out, AdmitOutcome::Stored { evicted: vec![] });
        assert_eq!(m.lookup(UrlHash::of("a"), SimTime::ZERO), Lookup::Hit);
    }

    #[test]
    fn oversized_object_is_blocked() {
        let mut m = CacheManager::new(CacheStore::new(1000, 500), NeverEvict);
        let out = m.admit(meta("big", 600, 60), SimTime::ZERO);
        assert_eq!(out, AdmitOutcome::Blocked);
        assert_eq!(m.lookup(UrlHash::of("big"), SimTime::ZERO), Lookup::Blocked);
    }

    #[test]
    fn object_larger_than_capacity_is_blocked() {
        let mut m = CacheManager::new(CacheStore::new(300, 500), NeverEvict);
        let out = m.admit(meta("big", 400, 60), SimTime::ZERO);
        assert_eq!(out, AdmitOutcome::Blocked);
    }

    #[test]
    fn refusing_policy_declines_admission() {
        let mut m = CacheManager::new(CacheStore::new(150, 500), NeverEvict);
        m.admit(meta("a", 100, 60), SimTime::ZERO);
        let out = m.admit(meta("b", 100, 60), SimTime::ZERO);
        assert_eq!(out, AdmitOutcome::Declined);
        assert_eq!(m.lookup(UrlHash::of("a"), SimTime::ZERO), Lookup::Hit);
        assert_eq!(m.lookup(UrlHash::of("b"), SimTime::ZERO), Lookup::Absent);
    }

    #[test]
    fn eager_policy_makes_room() {
        let mut m = CacheManager::new(CacheStore::new(150, 500), EvictAll);
        m.admit(meta("a", 100, 60), SimTime::ZERO);
        let out = m.admit(meta("b", 100, 60), SimTime::ZERO);
        assert_eq!(
            out,
            AdmitOutcome::Stored {
                evicted: vec![UrlHash::of("a")]
            }
        );
        assert_eq!(m.lookup(UrlHash::of("b"), SimTime::ZERO), Lookup::Hit);
    }

    #[test]
    fn expired_entries_purged_before_policy_runs() {
        let mut m = CacheManager::new(CacheStore::new(150, 500), NeverEvict);
        m.admit(meta("a", 100, 10), SimTime::ZERO);
        // At t=20 the old entry is expired, so "b" fits without eviction.
        let out = m.admit(meta("b", 100, 60), SimTime::from_secs(20));
        assert_eq!(out, AdmitOutcome::Stored { evicted: vec![] });
    }

    #[test]
    fn policy_name_passthrough() {
        let m = CacheManager::new(CacheStore::new(100, 500), NeverEvict);
        assert_eq!(m.policy_name(), "never");
        assert_eq!(m.store().capacity(), 100);
    }
}
