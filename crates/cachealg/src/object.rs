//! Cacheable-object metadata shared by the cache store and the policies.

use std::fmt;

use ape_dnswire::UrlHash;
use ape_simnet::{SimDuration, SimTime};

/// Identifies the app a cacheable object belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AppId(u32);

impl AppId {
    /// Creates an app id.
    pub const fn new(raw: u32) -> Self {
        AppId(raw)
    }

    /// The raw id.
    pub const fn get(self) -> u32 {
        self.0
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app#{}", self.0)
    }
}

/// Developer-assigned priority of a cacheable object.
///
/// The paper defines priority as a positive integer where larger means more
/// important, and its programming model accepts 1 (low) or 2 (high).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(u8);

impl Priority {
    /// Low priority (1): objects off the app's critical path.
    pub const LOW: Priority = Priority(1);
    /// High priority (2): objects on the app's critical path.
    pub const HIGH: Priority = Priority(2);

    /// Creates a priority from a positive integer.
    ///
    /// # Panics
    ///
    /// Panics if `value` is zero — the paper defines priorities as positive.
    pub fn new(value: u8) -> Self {
        assert!(value > 0, "priority must be positive");
        Priority(value)
    }

    /// The numeric value.
    pub const fn get(self) -> u8 {
        self.0
    }

    /// Whether this is (at least) high priority.
    pub fn is_high(self) -> bool {
        self.0 >= Priority::HIGH.0
    }
}

impl Default for Priority {
    fn default() -> Self {
        Priority::LOW
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Priority::LOW => write!(f, "low"),
            Priority::HIGH => write!(f, "high"),
            Priority(v) => write!(f, "priority{v}"),
        }
    }
}

/// Metadata of one cacheable object, the unit PACM reasons about.
///
/// Field names follow the paper's model (§IV-C): `s_d` size, `p_d` priority,
/// `e_d` remaining validity, `l_d` latency saved per request.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectMeta {
    /// Hash of the object's full URL — the cache key.
    pub key: UrlHash,
    /// App the object belongs to (`A_d`).
    pub app: AppId,
    /// Object size in bytes (`s_d`).
    pub size: u64,
    /// Developer priority (`p_d`).
    pub priority: Priority,
    /// Absolute expiry instant, from the developer TTL.
    pub expires_at: SimTime,
    /// Latency a client saves by fetching from the AP instead of the remote
    /// server (`l_d`), approximated by the AP's observed delegation latency.
    pub fetch_latency: SimDuration,
}

impl ObjectMeta {
    /// Remaining valid time `e_d` at `now`; zero when expired.
    pub fn remaining_ttl(&self, now: SimTime) -> SimDuration {
        self.expires_at.saturating_since(now)
    }

    /// Whether the object has expired at `now`.
    pub fn is_expired(&self, now: SimTime) -> bool {
        self.expires_at <= now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(expires_ms: u64) -> ObjectMeta {
        ObjectMeta {
            key: UrlHash::of("http://x/y"),
            app: AppId::new(1),
            size: 1000,
            priority: Priority::HIGH,
            expires_at: SimTime::from_millis(expires_ms),
            fetch_latency: SimDuration::from_millis(30),
        }
    }

    #[test]
    fn priority_ordering_and_flags() {
        assert!(Priority::HIGH > Priority::LOW);
        assert!(Priority::HIGH.is_high());
        assert!(!Priority::LOW.is_high());
        assert_eq!(Priority::new(2), Priority::HIGH);
        assert_eq!(Priority::default(), Priority::LOW);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_priority_rejected() {
        let _ = Priority::new(0);
    }

    #[test]
    fn priority_display() {
        assert_eq!(Priority::LOW.to_string(), "low");
        assert_eq!(Priority::HIGH.to_string(), "high");
        assert_eq!(Priority::new(5).to_string(), "priority5");
    }

    #[test]
    fn remaining_ttl_saturates() {
        let m = meta(100);
        assert_eq!(
            m.remaining_ttl(SimTime::from_millis(40)),
            SimDuration::from_millis(60)
        );
        assert_eq!(
            m.remaining_ttl(SimTime::from_millis(200)),
            SimDuration::ZERO
        );
        assert!(m.is_expired(SimTime::from_millis(100)));
        assert!(!m.is_expired(SimTime::from_millis(99)));
    }

    #[test]
    fn app_id_display() {
        assert_eq!(AppId::new(3).to_string(), "app#3");
        assert_eq!(AppId::new(3).get(), 3);
    }
}
