//! Equivalence proofs for the incremental PACM eviction engine.
//!
//! The optimized `PacmPolicy::select_victims` (reusable workspace,
//! prefix-clamped bitset DP, pre-solver reductions, incremental fairness
//! repair) must return **byte-identical victim lists** — same keys, same
//! order — as the frozen seed implementation preserved in
//! `ape_cachealg::reference`, on every input. These tests pin that claim on
//! randomized stores (sizes, priorities, TTLs incl. expired, app mixes,
//! trained frequencies, θ and granularity choices, both solver paths) plus
//! a golden regression on a seeded 1 000-object store.

use ape_cachealg::reference::{solve_exact_seed, ReferencePacm};
use ape_cachealg::{
    solve_exact_in, AppId, CacheStore, KnapsackItem, KnapsackWorkspace, ObjectMeta, PacmConfig,
    PacmPolicy, Priority,
};
use ape_dnswire::UrlHash;
use ape_simnet::{SimDuration, SimTime};
use proptest::prelude::*;

/// One randomized PACM instance: store contents, training traffic, config.
#[derive(Debug, Clone)]
struct Instance {
    capacity: u64,
    objects: Vec<ObjectMeta>,
    /// `(app, request_count)` training before the window roll.
    training: Vec<(u32, u8)>,
    incoming: ObjectMeta,
    theta: f64,
    granularity: u64,
    max_dp_items: usize,
    fairness: bool,
}

fn arb_object(max_size: u64) -> impl Strategy<Value = ObjectMeta> {
    (
        any::<u64>(),
        0u32..8,
        0u64..max_size,
        prop_oneof![Just(Priority::LOW), Just(Priority::HIGH)],
        // Expiry in absolute seconds; `now` is 61, so a chunk is expired.
        0u64..3600,
        0u64..120,
    )
        .prop_map(|(key, app, size, priority, expires_s, lat_ms)| ObjectMeta {
            key: UrlHash(key),
            app: AppId::new(app),
            size,
            priority,
            expires_at: SimTime::from_secs(expires_s),
            fetch_latency: SimDuration::from_millis(lat_ms),
        })
}

fn arb_instance() -> impl Strategy<Value = Instance> {
    (
        20_000u64..120_000,
        proptest::collection::vec(arb_object(9_000), 0..48),
        proptest::collection::vec((0u32..8, 0u8..40), 0..8),
        arb_object(60_000),
        prop_oneof![Just(0.0), Just(0.05), Just(0.2), Just(0.4), Just(1.0)],
        prop_oneof![Just(1u64), Just(7), Just(1024)],
        // Small cap forces the greedy path on larger instances.
        prop_oneof![Just(4usize), Just(4096)],
        any::<bool>(),
    )
        .prop_map(
            |(
                capacity,
                objects,
                training,
                incoming,
                theta,
                granularity,
                max_dp_items,
                fairness,
            )| {
                Instance {
                    capacity,
                    objects,
                    training,
                    incoming,
                    theta,
                    granularity,
                    max_dp_items,
                    fairness,
                }
            },
        )
}

/// Builds the store, skipping objects that would not fit (the generator is
/// oblivious to capacity) so both policies see the identical store.
fn build_store(inst: &Instance) -> CacheStore {
    let mut store = CacheStore::new(inst.capacity, inst.capacity);
    for meta in &inst.objects {
        if meta.size <= store.free() && !store.exceeds_block_threshold(meta.size) {
            store.insert(meta.clone(), SimTime::ZERO);
        }
    }
    store
}

fn config_of(inst: &Instance) -> PacmConfig {
    PacmConfig {
        fairness_theta: inst.theta,
        granularity: inst.granularity,
        max_dp_items: inst.max_dp_items,
        ..PacmConfig::default()
    }
}

/// Runs one instance through both engines and returns their victim lists.
fn run_both(inst: &Instance) -> (Vec<Vec<UrlHash>>, Vec<Vec<UrlHash>>) {
    let store = build_store(inst);
    let config = config_of(inst);
    let mut new_policy = PacmPolicy::new(config);
    let mut seed_policy = ReferencePacm::new(config);
    if !inst.fairness {
        new_policy = new_policy.without_fairness();
        seed_policy = seed_policy.without_fairness();
    }
    for &(app, count) in &inst.training {
        for _ in 0..count {
            use ape_cachealg::EvictionPolicy;
            new_policy.note_request(AppId::new(app));
            seed_policy.note_request(AppId::new(app));
        }
    }
    {
        use ape_cachealg::EvictionPolicy;
        new_policy.roll_window(SimTime::from_secs(60));
    }
    seed_policy.roll_window(SimTime::from_secs(60));

    let now = SimTime::from_secs(61);
    // Two consecutive selects: the second proves workspace/buffer reuse
    // leaves no state behind that could change the answer.
    use ape_cachealg::EvictionPolicy;
    let new_victims: Vec<Vec<UrlHash>> = (0..2)
        .map(|_| new_policy.select_victims(&store, &inst.incoming, now))
        .collect();
    let seed_victims: Vec<Vec<UrlHash>> = (0..2)
        .map(|_| seed_policy.select_victims(&store, &inst.incoming, now))
        .collect();
    (new_victims, seed_victims)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(220))]

    // The tentpole claim: optimized and seed PACM pick byte-identical
    // victim lists (same keys, same order) across randomized instances.
    #[test]
    fn victim_sets_match_seed(inst in arb_instance()) {
        let (new_victims, seed_victims) = run_both(&inst);
        prop_assert_eq!(&new_victims[0], &seed_victims[0]);
        prop_assert_eq!(&new_victims[1], &seed_victims[1]);
        prop_assert_eq!(&new_victims[0], &new_victims[1]);
    }

    // Workspace DP vs the seed DP: identical keep vectors and totals,
    // including zero-weight/zero-value items and coarse granularity.
    #[test]
    fn workspace_dp_matches_seed_dp(
        items in proptest::collection::vec(
            (0u64..5_000, 0u32..400).prop_map(|(weight, value)| KnapsackItem {
                weight,
                value: value as f64 / 16.0,
            }),
            0..40,
        ),
        capacity in 0u64..60_000,
        granularity in prop_oneof![Just(1u64), Just(7), Just(1024)],
    ) {
        let seed = solve_exact_seed(&items, capacity, granularity);
        let mut ws = KnapsackWorkspace::new();
        let (value, weight) = solve_exact_in(&mut ws, &items, capacity, granularity);
        prop_assert_eq!(ws.keep(), seed.keep.as_slice());
        prop_assert_eq!(value.to_bits(), seed.total_value.to_bits());
        prop_assert_eq!(weight, seed.total_weight);
    }
}

/// Deterministic 1 000-object store used by the golden regression.
fn golden_store() -> (CacheStore, ObjectMeta) {
    let mut state = 0xA5A5_5A5A_1234_5678u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut store = CacheStore::new(5_000_000, 500_000);
    let mut inserted = 0u32;
    while inserted < 1_000 {
        let meta = ObjectMeta {
            key: UrlHash(next()),
            app: AppId::new((next() % 30) as u32),
            size: next() % 6_000 + 200,
            priority: if next() % 5 < 2 {
                Priority::HIGH
            } else {
                Priority::LOW
            },
            expires_at: SimTime::from_secs(next() % 3000 + 30),
            fetch_latency: SimDuration::from_millis(next() % 90 + 5),
        };
        if meta.size <= store.free() {
            store.insert(meta, SimTime::ZERO);
            inserted += 1;
        }
    }
    let incoming = ObjectMeta {
        key: UrlHash::of("golden-incoming"),
        app: AppId::new(3),
        size: 80_000,
        priority: Priority::HIGH,
        expires_at: SimTime::from_secs(4000),
        fetch_latency: SimDuration::from_millis(40),
    };
    (store, incoming)
}

fn fnv1a(victims: &[UrlHash]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for v in victims {
        for byte in v.0.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
    }
    hash
}

/// Golden-victims regression: the exact victim list on a fixed seeded
/// 1 000-object store, pinned by count and FNV-1a digest. Any change to
/// utilities, solver order, reductions, or repair semantics trips this.
#[test]
fn golden_victims_on_seeded_store() {
    use ape_cachealg::EvictionPolicy;
    let (store, incoming) = golden_store();
    let mut policy = PacmPolicy::new(PacmConfig::default());
    for i in 0..600u32 {
        policy.note_request(AppId::new(i % 7));
    }
    policy.roll_window(SimTime::from_secs(60));
    let victims = policy.select_victims(&store, &incoming, SimTime::from_secs(61));

    // Pinned from the frozen seed implementation (ReferencePacm agrees).
    let mut seed_policy = ReferencePacm::new(PacmConfig::default());
    for i in 0..600u32 {
        seed_policy.note_request(AppId::new(i % 7));
    }
    seed_policy.roll_window(SimTime::from_secs(60));
    let seed_victims = seed_policy.select_victims(&store, &incoming, SimTime::from_secs(61));
    assert_eq!(victims, seed_victims);

    assert_eq!(
        victims.len(),
        GOLDEN_VICTIM_COUNT,
        "victim count drifted (digest {:#018x})",
        fnv1a(&victims)
    );
    assert_eq!(
        fnv1a(&victims),
        GOLDEN_VICTIM_DIGEST,
        "victim list digest drifted"
    );
}

const GOLDEN_VICTIM_COUNT: usize = 16;
const GOLDEN_VICTIM_DIGEST: u64 = 0x98d651e184d6cfe3;
