//! Property tests over the cache algorithms' core invariants.

use ape_cachealg::{
    gini, gini_naive, solve_brute_force, solve_exact, solve_greedy, AdmitOutcome, AppId,
    CacheManager, CacheStore, KnapsackItem, LruPolicy, ObjectMeta, PacmConfig, PacmPolicy,
    Priority,
};
use ape_dnswire::UrlHash;
use ape_simnet::{SimDuration, SimTime};
use proptest::prelude::*;

fn arb_items() -> impl Strategy<Value = Vec<KnapsackItem>> {
    proptest::collection::vec(
        (1u64..40, 0u32..100).prop_map(|(weight, value)| KnapsackItem {
            weight,
            value: value as f64,
        }),
        0..12,
    )
}

fn arb_meta() -> impl Strategy<Value = ObjectMeta> {
    (
        any::<u64>(),
        0u32..6,
        1u64..120_000,
        prop_oneof![Just(Priority::LOW), Just(Priority::HIGH)],
        1u64..3600,
        1u64..100,
    )
        .prop_map(|(key, app, size, priority, ttl_s, lat_ms)| ObjectMeta {
            key: UrlHash(key),
            app: AppId::new(app),
            size,
            priority,
            expires_at: SimTime::from_secs(ttl_s),
            fetch_latency: SimDuration::from_millis(lat_ms),
        })
}

proptest! {
    #[test]
    fn exact_knapsack_is_optimal(items in arb_items(), capacity in 0u64..200) {
        let exact = solve_exact(&items, capacity, 1);
        let brute = solve_brute_force(&items, capacity);
        prop_assert!((exact.total_value - brute.total_value).abs() < 1e-9);
        prop_assert!(exact.total_weight <= capacity);
    }

    #[test]
    fn greedy_is_feasible_and_not_better_than_exact(items in arb_items(), capacity in 0u64..200) {
        let exact = solve_exact(&items, capacity, 1);
        let greedy = solve_greedy(&items, capacity);
        prop_assert!(greedy.total_weight <= capacity);
        prop_assert!(greedy.total_value <= exact.total_value + 1e-9);
    }

    #[test]
    fn gini_is_in_unit_interval_and_matches_naive(
        shares in proptest::collection::vec(0.0f64..1000.0, 0..12)
    ) {
        let g = gini(&shares);
        prop_assert!((0.0..=1.0).contains(&g), "g = {g}");
        prop_assert!((g - gini_naive(&shares)).abs() < 1e-9);
    }

    #[test]
    fn gini_zero_iff_equal(share in 0.1f64..100.0, n in 2usize..10) {
        let shares = vec![share; n];
        prop_assert!(gini(&shares) < 1e-12);
    }

    #[test]
    fn lru_never_exceeds_capacity(metas in proptest::collection::vec(arb_meta(), 1..40)) {
        let mut manager = CacheManager::new(CacheStore::new(200_000, 150_000), LruPolicy::new());
        for (i, meta) in metas.into_iter().enumerate() {
            let now = SimTime::from_secs(i as u64);
            let _ = manager.admit(meta, now);
            prop_assert!(manager.store().used() <= manager.store().capacity());
        }
    }

    #[test]
    fn pacm_never_exceeds_capacity(metas in proptest::collection::vec(arb_meta(), 1..40)) {
        let mut manager = CacheManager::new(
            CacheStore::new(200_000, 150_000),
            PacmPolicy::new(PacmConfig::default()),
        );
        for (i, meta) in metas.into_iter().enumerate() {
            let now = SimTime::from_secs(i as u64);
            let app = meta.app;
            manager.note_request(app);
            let _ = manager.admit(meta, now);
            prop_assert!(manager.store().used() <= manager.store().capacity());
        }
    }

    #[test]
    fn admitted_object_is_always_present(meta in arb_meta()) {
        // Any object below the block threshold admitted into an empty cache
        // must be a Hit immediately afterwards (before its TTL).
        let mut manager = CacheManager::new(
            CacheStore::new(200_000, 150_000),
            PacmPolicy::new(PacmConfig::default()),
        );
        let key = meta.key;
        let out = manager.admit(meta, SimTime::ZERO);
        prop_assert!(matches!(out, AdmitOutcome::Stored { .. }), "{out:?}");
        prop_assert_eq!(manager.lookup(key, SimTime::ZERO), ape_cachealg::Lookup::Hit);
    }
}
