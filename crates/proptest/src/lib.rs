//! # proptest (in-repo shim)
//!
//! A minimal, dependency-free re-implementation of the slice of the
//! [proptest](https://docs.rs/proptest) API this workspace's property tests
//! use. The build environment has no access to a crates.io registry, so the
//! real crate cannot be fetched; rather than rewriting (and weakening) the
//! property tests, this shim keeps them compiling and running unchanged.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs (via `Debug` in the
//!   assertion message) and the deterministic case seed, but is not
//!   minimized.
//! * **Deterministic seeds.** Cases are derived from the test name and case
//!   index, so failures always reproduce exactly — there is no persistence
//!   file because none is needed.
//! * **Tiny regex subset.** String strategies accept exactly the
//!   `[class]{lo,hi}` shape (single character class with a bounded repeat),
//!   which is all the workspace uses.

#![forbid(unsafe_code)]
// Strategy types wrap closures and trait objects whose Debug output would be
// meaningless; real proptest derives little here either.
#![allow(missing_debug_implementations)]

use std::fmt;
use std::ops::Range;

// ---------------------------------------------------------------------
// Deterministic RNG (xoshiro256++ seeded through SplitMix64)
// ---------------------------------------------------------------------

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Deterministic random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform bool.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

// ---------------------------------------------------------------------
// Errors and config
// ---------------------------------------------------------------------

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the case is a real failure.
    Fail(String),
    /// The case's inputs were rejected by `prop_assume!`; try another.
    Reject,
}

impl TestCaseError {
    /// Constructs a failure with the given message.
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }
}

/// Subset of proptest's run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest's default.
        ProptestConfig { cases: 256 }
    }
}

/// Drives the case loop for one `proptest!`-generated test. Called by the
/// macro expansion, not by user code.
pub fn run_cases(
    name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    // FNV-1a over the test name anchors the seed sequence per test.
    let mut base = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        base ^= b as u64;
        base = base.wrapping_mul(0x100000001b3);
    }
    let mut passed = 0u32;
    let mut attempt = 0u64;
    let max_attempts = config.cases as u64 * 16 + 64;
    while passed < config.cases {
        assert!(
            attempt < max_attempts,
            "proptest '{name}': too many rejected cases ({attempt} attempts for {} passes)",
            passed
        );
        let seed = base ^ attempt.wrapping_mul(0x2545F4914F6CDD1D);
        let mut rng = TestRng::seed_from(seed);
        attempt += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at case {passed} (seed {seed:#x}): {msg}")
            }
        }
    }
}

// ---------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------

/// Generates values of an output type from randomness.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Boxes a strategy for use in heterogeneous unions (`prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies of a common value type.
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Creates a union over `arms`; each arm is equally likely.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

// --- Ranges -----------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit() * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

// --- any::<T>() -------------------------------------------------------

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.flip()
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

/// Strategy for [`Arbitrary`] types; returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// --- Tuples -----------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

// --- Strings (regex subset) -------------------------------------------

/// Error from [`string::string_regex`] on an unsupported pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError(pub String);

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unsupported regex: {}", self.0)
    }
}

impl std::error::Error for RegexError {}

/// Compiled `[class]{lo,hi}` pattern.
#[derive(Debug, Clone)]
pub struct StringRegex {
    chars: Vec<char>,
    lo: usize,
    hi: usize,
}

fn parse_char_class(pattern: &str) -> Result<StringRegex, RegexError> {
    let err = || RegexError(pattern.to_owned());
    let rest = pattern.strip_prefix('[').ok_or_else(err)?;
    let close = rest.find(']').ok_or_else(err)?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        // `a-z` is a range unless `-` is the final character of the class.
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            if lo > hi {
                return Err(err());
            }
            for c in lo..=hi {
                chars.push(char::from_u32(c).ok_or_else(err)?);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return Err(err());
    }
    let quant = rest[close + 1..]
        .strip_prefix('{')
        .and_then(|q| q.strip_suffix('}'))
        .ok_or_else(err)?;
    let (lo, hi) = match quant.split_once(',') {
        Some((lo, hi)) => (
            lo.parse().map_err(|_| err())?,
            hi.parse().map_err(|_| err())?,
        ),
        None => {
            let n = quant.parse().map_err(|_| err())?;
            (n, n)
        }
    };
    if lo > hi {
        return Err(err());
    }
    Ok(StringRegex { chars, lo, hi })
}

impl Strategy for StringRegex {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let len = self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize;
        (0..len)
            .map(|_| self.chars[rng.below(self.chars.len() as u64) as usize])
            .collect()
    }
}

/// String literals act as regex strategies, as in real proptest.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        parse_char_class(self)
            .unwrap_or_else(|e| panic!("{e}"))
            .generate(rng)
    }
}

/// String strategies.
pub mod string {
    use super::{parse_char_class, RegexError, StringRegex};

    /// Compiles `pattern` (subset: `[class]{lo,hi}`) into a strategy.
    pub fn string_regex(pattern: &str) -> Result<StringRegex, RegexError> {
        parse_char_class(pattern)
    }
}

// --- Collections ------------------------------------------------------

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `element` values with length in `size` (half-open).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// --- Options ----------------------------------------------------------

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) > 0 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

// --- Samples ----------------------------------------------------------

/// Sampling helpers (`prop::sample`).
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection whose length is unknown at generation
    /// time; resolved against a concrete length with [`Index::index`].
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Resolves to a position in `[0, len)`.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Declares property tests. See real proptest for the full syntax; this
/// shim supports the `arg in strategy` form plus an optional leading
/// `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (@with_config ($cfg:expr) $(
        #[test]
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config = $cfg;
            $crate::run_cases(stringify!($name), &config, |rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), rng);)+
                let out: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    Ok(())
                })();
                out
            });
        }
    )*};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), a, b),
            ));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a != *b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("{}\n  both: {:?}", format!($($fmt)+), a),
            ));
        }
    }};
}

/// Rejects the current case (resampled, not counted) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($arm)),+])
    };
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regex_subset_parses() {
        let s = crate::string::string_regex("[a-z0-9_-]{1,12}").expect("supported");
        let mut rng = crate::TestRng::seed_from(1);
        for _ in 0..200 {
            let out = crate::Strategy::generate(&s, &mut rng);
            assert!((1..=12).contains(&out.len()), "{out:?}");
            assert!(out
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-'));
        }
        // Printable-ASCII range class.
        let s = crate::string::string_regex("[ -~]{0,60}").expect("supported");
        for _ in 0..200 {
            let out = crate::Strategy::generate(&s, &mut rng);
            assert!(out.len() <= 60);
            assert!(out.chars().all(|c| (' '..='~').contains(&c)));
        }
        assert!(crate::string::string_regex("foo*").is_err());
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::TestRng::seed_from(9);
        let mut b = crate::TestRng::seed_from(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_asserts(x in 1u64..100, v in crate::collection::vec(0u8..10, 0..5)) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(v.len() < 5);
            for b in &v {
                prop_assert!(*b < 10);
            }
        }

        #[test]
        fn oneof_and_assume(flag in prop_oneof![Just(1u8), Just(2u8)], y in 0u32..50) {
            prop_assume!(y != 13);
            prop_assert!(flag == 1 || flag == 2);
            prop_assert_ne!(y, 13);
            prop_assert_eq!(y.wrapping_add(u32::from(flag)) - u32::from(flag), y);
        }

        #[test]
        fn tuples_options_and_maps(
            pair in (0u8..4, 0u8..4).prop_map(|(a, b)| (a as u16) * 4 + b as u16),
            opt in crate::option::of(0u8..3),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(pair < 16);
            if let Some(v) = opt {
                prop_assert!(v < 3);
            }
            prop_assert!(idx.index(7) < 7);
        }
    }
}
