//! Error type for DNS wire-format parsing and construction.

use std::error::Error;
use std::fmt;

/// Errors produced while encoding or decoding DNS messages.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// Input ended before the structure was complete.
    Truncated,
    /// A label exceeded 63 bytes.
    LabelTooLong(usize),
    /// A full domain name exceeded 255 bytes on the wire.
    NameTooLong(usize),
    /// A label contained a byte outside the permitted hostname set.
    BadLabel(u8),
    /// A compression pointer pointed forward or at itself.
    BadPointer(u16),
    /// Compression pointers formed a loop.
    PointerLoop,
    /// Bytes remained after the complete message was parsed.
    TrailingBytes(usize),
    /// An RDATA section did not match its RDLENGTH or record type.
    BadRdata(&'static str),
    /// A count field implies more records than the input can hold.
    BadCount,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::LabelTooLong(n) => write!(f, "label of {n} bytes exceeds 63"),
            WireError::NameTooLong(n) => write!(f, "name of {n} bytes exceeds 255"),
            WireError::BadLabel(b) => write!(f, "invalid label byte {b:#04x}"),
            WireError::BadPointer(off) => write!(f, "invalid compression pointer to {off}"),
            WireError::PointerLoop => write!(f, "compression pointer loop"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::BadRdata(what) => write!(f, "malformed rdata: {what}"),
            WireError::BadCount => write!(f, "section count exceeds message size"),
        }
    }
}

impl Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let errs = [
            WireError::Truncated,
            WireError::LabelTooLong(70),
            WireError::NameTooLong(300),
            WireError::BadLabel(0xFF),
            WireError::BadPointer(12),
            WireError::PointerLoop,
            WireError::TrailingBytes(4),
            WireError::BadRdata("cache tuple"),
            WireError::BadCount,
        ];
        for e in errs {
            let text = e.to_string();
            assert!(!text.is_empty());
            assert!(!text.chars().next().unwrap().is_uppercase());
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<WireError>();
    }
}
