//! Resource records: types, classes, RDATA variants — including the paper's
//! DNS-Cache record (TYPE 300).

use std::fmt;
use std::net::Ipv4Addr;

use crate::bytes::{Reader, Writer};
use crate::error::WireError;
use crate::hash::UrlHash;
use crate::name::DomainName;

/// Record type code. The paper assigns the unused value **300** to its
/// "DNS-Cache" record (§IV-B, Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RrType {
    /// IPv4 address record.
    A,
    /// Canonical name (alias) record.
    Cname,
    /// Name server record.
    Ns,
    /// Text record.
    Txt,
    /// EDNS(0) OPT pseudo-record (RFC 6891).
    Opt,
    /// APE-CACHE's DNS-Cache record, TYPE = 300.
    DnsCache,
    /// Any other type, kept as its raw code.
    Other(u16),
}

impl RrType {
    /// Wire code of this type.
    pub fn code(self) -> u16 {
        match self {
            RrType::A => 1,
            RrType::Ns => 2,
            RrType::Cname => 5,
            RrType::Txt => 16,
            RrType::Opt => 41,
            RrType::DnsCache => 300,
            RrType::Other(c) => c,
        }
    }

    /// Parses a wire code.
    pub fn from_code(code: u16) -> Self {
        match code {
            1 => RrType::A,
            2 => RrType::Ns,
            5 => RrType::Cname,
            16 => RrType::Txt,
            41 => RrType::Opt,
            300 => RrType::DnsCache,
            c => RrType::Other(c),
        }
    }
}

impl fmt::Display for RrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RrType::A => write!(f, "A"),
            RrType::Ns => write!(f, "NS"),
            RrType::Cname => write!(f, "CNAME"),
            RrType::Txt => write!(f, "TXT"),
            RrType::Opt => write!(f, "OPT"),
            RrType::DnsCache => write!(f, "DNS-CACHE"),
            RrType::Other(c) => write!(f, "TYPE{c}"),
        }
    }
}

/// Record class. Standard queries use `IN`; the paper overloads the CLASS
/// field of DNS-Cache records to mark the direction of the piggybacked
/// lookup: `REQUEST` (client → AP) or `RESPONSE` (AP → client). We place
/// those in the private-use range (0xFF01/0xFF02) so they cannot collide
/// with IANA-assigned classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RrClass {
    /// The Internet class.
    In,
    /// DNS-Cache lookup request (client → AP).
    CacheRequest,
    /// DNS-Cache lookup response (AP → client).
    CacheResponse,
    /// Any other class, kept as its raw code.
    Other(u16),
}

impl RrClass {
    /// Wire code of this class.
    pub fn code(self) -> u16 {
        match self {
            RrClass::In => 1,
            RrClass::CacheRequest => 0xFF01,
            RrClass::CacheResponse => 0xFF02,
            RrClass::Other(c) => c,
        }
    }

    /// Parses a wire code.
    pub fn from_code(code: u16) -> Self {
        match code {
            1 => RrClass::In,
            0xFF01 => RrClass::CacheRequest,
            0xFF02 => RrClass::CacheResponse,
            c => RrClass::Other(c),
        }
    }
}

impl fmt::Display for RrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RrClass::In => write!(f, "IN"),
            RrClass::CacheRequest => write!(f, "REQUEST"),
            RrClass::CacheResponse => write!(f, "RESPONSE"),
            RrClass::Other(c) => write!(f, "CLASS{c}"),
        }
    }
}

/// Per-URL cache status carried in a DNS-Cache tuple (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheFlag {
    /// Unknown to the requester; used in REQUEST tuples.
    Query,
    /// Object is cached on the AP and can be fetched directly.
    Hit,
    /// Object is not on the AP and the AP will not serve it (block-listed);
    /// fetch from the edge.
    Miss,
    /// Object is not cached but the AP will delegate the fetch.
    Delegation,
}

impl CacheFlag {
    /// Wire code.
    pub fn code(self) -> u8 {
        match self {
            CacheFlag::Query => 0,
            CacheFlag::Hit => 1,
            CacheFlag::Miss => 2,
            CacheFlag::Delegation => 3,
        }
    }

    /// Parses a wire code.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::BadRdata`] for unknown codes.
    pub fn from_code(code: u8) -> Result<Self, WireError> {
        match code {
            0 => Ok(CacheFlag::Query),
            1 => Ok(CacheFlag::Hit),
            2 => Ok(CacheFlag::Miss),
            3 => Ok(CacheFlag::Delegation),
            _ => Err(WireError::BadRdata("unknown cache flag")),
        }
    }
}

impl fmt::Display for CacheFlag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheFlag::Query => write!(f, "Query"),
            CacheFlag::Hit => write!(f, "Cache-Hit"),
            CacheFlag::Miss => write!(f, "Cache-Miss"),
            CacheFlag::Delegation => write!(f, "Delegation"),
        }
    }
}

/// One `⟨HASH(URL), FLAG⟩` tuple from DNS-Cache RDATA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheTuple {
    /// Stable hash of the object URL.
    pub url_hash: UrlHash,
    /// Cache status (or [`CacheFlag::Query`] in requests).
    pub flag: CacheFlag,
}

impl CacheTuple {
    /// Creates a tuple.
    pub fn new(url_hash: UrlHash, flag: CacheFlag) -> Self {
        CacheTuple { url_hash, flag }
    }

    const WIRE_LEN: usize = 9;

    fn encode(&self, w: &mut Writer) {
        w.u64(self.url_hash.get());
        w.u8(self.flag.code());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let hash = r.u64()?;
        let flag = CacheFlag::from_code(r.u8()?)?;
        Ok(CacheTuple::new(UrlHash(hash), flag))
    }
}

/// RDATA payload of a resource record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// Alias target.
    Cname(DomainName),
    /// Name server.
    Ns(DomainName),
    /// Free-form text.
    Txt(String),
    /// EDNS(0) OPT payload (opaque options).
    Opt(Vec<u8>),
    /// DNS-Cache tuple list.
    DnsCache(Vec<CacheTuple>),
    /// Uninterpreted bytes for unknown types.
    Other(Vec<u8>),
}

impl RData {
    /// The record type this payload belongs to.
    pub fn rtype(&self) -> RrType {
        match self {
            RData::A(_) => RrType::A,
            RData::Cname(_) => RrType::Cname,
            RData::Ns(_) => RrType::Ns,
            RData::Txt(_) => RrType::Txt,
            RData::Opt(_) => RrType::Opt,
            RData::DnsCache(_) => RrType::DnsCache,
            RData::Other(_) => RrType::Other(0xFFFF),
        }
    }

    fn encode(&self, w: &mut Writer) {
        match self {
            RData::A(ip) => w.bytes(&ip.octets()),
            RData::Cname(n) | RData::Ns(n) => n.encode(w),
            RData::Txt(s) => {
                // RFC1035 character-string: single length-prefixed chunk.
                let bytes = s.as_bytes();
                let take = bytes.len().min(255);
                w.u8(take as u8);
                w.bytes(&bytes[..take]);
            }
            RData::Opt(bytes) | RData::Other(bytes) => w.bytes(bytes),
            RData::DnsCache(tuples) => {
                for t in tuples {
                    t.encode(w);
                }
            }
        }
    }

    fn decode(rtype: RrType, rdlength: usize, r: &mut Reader<'_>) -> Result<Self, WireError> {
        let end = r.pos() + rdlength;
        if r.remaining() < rdlength {
            return Err(WireError::Truncated);
        }
        let data = match rtype {
            RrType::A => {
                if rdlength != 4 {
                    return Err(WireError::BadRdata("A rdlength != 4"));
                }
                let b = r.take(4)?;
                RData::A(Ipv4Addr::new(b[0], b[1], b[2], b[3]))
            }
            RrType::Cname => RData::Cname(DomainName::decode(r)?),
            RrType::Ns => RData::Ns(DomainName::decode(r)?),
            RrType::Txt => {
                let len = r.u8()? as usize;
                if len + 1 != rdlength {
                    return Err(WireError::BadRdata("txt length mismatch"));
                }
                let bytes = r.take(len)?;
                let s = String::from_utf8(bytes.to_vec())
                    .map_err(|_| WireError::BadRdata("txt not utf-8"))?;
                RData::Txt(s)
            }
            RrType::Opt => RData::Opt(r.take(rdlength)?.to_vec()),
            RrType::DnsCache => {
                if !rdlength.is_multiple_of(CacheTuple::WIRE_LEN) {
                    return Err(WireError::BadRdata("cache rdata not multiple of 9"));
                }
                let count = rdlength / CacheTuple::WIRE_LEN;
                let mut tuples = Vec::with_capacity(count);
                for _ in 0..count {
                    tuples.push(CacheTuple::decode(r)?);
                }
                RData::DnsCache(tuples)
            }
            RrType::Other(_) => RData::Other(r.take(rdlength)?.to_vec()),
        };
        if r.pos() != end {
            return Err(WireError::BadRdata("rdlength mismatch"));
        }
        Ok(data)
    }
}

/// A full resource record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceRecord {
    /// Owner name.
    pub name: DomainName,
    /// Record class.
    pub class: RrClass,
    /// Time-to-live in seconds.
    pub ttl: u32,
    /// Typed payload; the record's TYPE derives from this.
    pub rdata: RData,
}

impl ResourceRecord {
    /// Creates an `IN`-class record.
    pub fn new(name: DomainName, ttl: u32, rdata: RData) -> Self {
        ResourceRecord {
            name,
            class: RrClass::In,
            ttl,
            rdata,
        }
    }

    /// Creates a DNS-Cache record with the given direction class.
    ///
    /// # Panics
    ///
    /// Panics if `class` is not `CacheRequest`/`CacheResponse` or the rdata
    /// is not [`RData::DnsCache`] — those combinations never appear on the
    /// wire and indicate a construction bug.
    pub fn new_dns_cache(name: DomainName, class: RrClass, tuples: Vec<CacheTuple>) -> Self {
        assert!(
            matches!(class, RrClass::CacheRequest | RrClass::CacheResponse),
            "DNS-Cache records use REQUEST/RESPONSE classes"
        );
        ResourceRecord {
            name,
            class,
            ttl: 0,
            rdata: RData::DnsCache(tuples),
        }
    }

    /// The record's TYPE.
    pub fn rtype(&self) -> RrType {
        self.rdata.rtype()
    }

    pub(crate) fn encode(&self, w: &mut Writer) {
        self.name.encode(w);
        w.u16(self.rtype().code());
        w.u16(self.class.code());
        w.u32(self.ttl);
        let len_pos = w.len();
        w.u16(0); // RDLENGTH patched below
        let start = w.len();
        self.rdata.encode(w);
        let rdlength = w.len() - start;
        w.patch_u16(len_pos, rdlength as u16);
    }

    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let name = DomainName::decode(r)?;
        let rtype = RrType::from_code(r.u16()?);
        let class = RrClass::from_code(r.u16()?);
        let ttl = r.u32()?;
        let rdlength = r.u16()? as usize;
        let rdata = RData::decode(rtype, rdlength, r)?;
        Ok(ResourceRecord {
            name,
            class,
            ttl,
            rdata,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn roundtrip(rr: &ResourceRecord) -> ResourceRecord {
        let mut w = Writer::new();
        rr.encode(&mut w);
        let buf = w.into_vec();
        let mut r = Reader::new(&buf);
        let out = ResourceRecord::decode(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        out
    }

    #[test]
    fn type_codes_roundtrip() {
        for t in [
            RrType::A,
            RrType::Ns,
            RrType::Cname,
            RrType::Txt,
            RrType::Opt,
            RrType::DnsCache,
            RrType::Other(999),
        ] {
            assert_eq!(RrType::from_code(t.code()), t);
        }
        assert_eq!(RrType::DnsCache.code(), 300);
    }

    #[test]
    fn class_codes_roundtrip() {
        for c in [
            RrClass::In,
            RrClass::CacheRequest,
            RrClass::CacheResponse,
            RrClass::Other(77),
        ] {
            assert_eq!(RrClass::from_code(c.code()), c);
        }
    }

    #[test]
    fn cache_flag_codes() {
        for f in [
            CacheFlag::Query,
            CacheFlag::Hit,
            CacheFlag::Miss,
            CacheFlag::Delegation,
        ] {
            assert_eq!(CacheFlag::from_code(f.code()).unwrap(), f);
        }
        assert!(CacheFlag::from_code(9).is_err());
    }

    #[test]
    fn a_record_roundtrip() {
        let rr = ResourceRecord::new(
            name("www.apple.com"),
            60,
            RData::A(Ipv4Addr::new(23, 4, 5, 6)),
        );
        assert_eq!(roundtrip(&rr), rr);
        assert_eq!(rr.rtype(), RrType::A);
    }

    #[test]
    fn cname_record_roundtrip() {
        let rr = ResourceRecord::new(
            name("www.apple.com"),
            300,
            RData::Cname(name("www.apple.com.edgekey.net")),
        );
        assert_eq!(roundtrip(&rr), rr);
    }

    #[test]
    fn txt_record_roundtrip() {
        let rr = ResourceRecord::new(name("x.y"), 0, RData::Txt("hello world".into()));
        assert_eq!(roundtrip(&rr), rr);
    }

    #[test]
    fn dns_cache_record_roundtrip() {
        let tuples = vec![
            CacheTuple::new(UrlHash::of("http://a/1"), CacheFlag::Hit),
            CacheTuple::new(UrlHash::of("http://a/2"), CacheFlag::Delegation),
            CacheTuple::new(UrlHash::of("http://a/3"), CacheFlag::Miss),
        ];
        let rr = ResourceRecord::new_dns_cache(name("a"), RrClass::CacheResponse, tuples.clone());
        let out = roundtrip(&rr);
        assert_eq!(out, rr);
        match out.rdata {
            RData::DnsCache(ts) => assert_eq!(ts, tuples),
            other => panic!("wrong rdata {other:?}"),
        }
    }

    #[test]
    fn empty_cache_record_is_valid() {
        let rr = ResourceRecord::new_dns_cache(name("a"), RrClass::CacheRequest, Vec::new());
        assert_eq!(roundtrip(&rr), rr);
    }

    #[test]
    #[should_panic(expected = "REQUEST/RESPONSE")]
    fn dns_cache_with_in_class_panics() {
        let _ = ResourceRecord::new_dns_cache(name("a"), RrClass::In, Vec::new());
    }

    #[test]
    fn bad_cache_rdata_length_rejected() {
        // Hand-encode a DNS-Cache record with RDLENGTH 8 (not multiple of 9).
        let mut w = Writer::new();
        name("a").encode(&mut w);
        w.u16(300);
        w.u16(RrClass::CacheRequest.code());
        w.u32(0);
        w.u16(8);
        w.u64(42);
        let buf = w.into_vec();
        let mut r = Reader::new(&buf);
        assert!(matches!(
            ResourceRecord::decode(&mut r),
            Err(WireError::BadRdata(_))
        ));
    }

    #[test]
    fn a_record_with_bad_length_rejected() {
        let mut w = Writer::new();
        name("a").encode(&mut w);
        w.u16(1); // A
        w.u16(1); // IN
        w.u32(0);
        w.u16(3);
        w.bytes(&[1, 2, 3]);
        let buf = w.into_vec();
        let mut r = Reader::new(&buf);
        assert!(ResourceRecord::decode(&mut r).is_err());
    }

    #[test]
    fn display_strings() {
        assert_eq!(RrType::DnsCache.to_string(), "DNS-CACHE");
        assert_eq!(RrClass::CacheRequest.to_string(), "REQUEST");
        assert_eq!(CacheFlag::Hit.to_string(), "Cache-Hit");
        assert_eq!(RrType::Other(512).to_string(), "TYPE512");
    }
}
