//! Full DNS messages (RFC1035 §4) and DNS-Cache query construction helpers.

use std::fmt;
use std::net::Ipv4Addr;

use crate::bytes::{Reader, Writer};
use crate::error::WireError;
use crate::name::DomainName;
use crate::rr::{CacheFlag, CacheTuple, RData, ResourceRecord, RrClass, RrType};

/// Response code (RCODE).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Rcode {
    /// No error.
    #[default]
    NoError,
    /// Format error.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name does not exist.
    NxDomain,
    /// Other code.
    Other(u8),
}

impl Rcode {
    /// 4-bit wire code.
    pub fn code(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::Other(c) => c & 0x0F,
        }
    }

    /// Parses the 4-bit wire code.
    pub fn from_code(code: u8) -> Self {
        match code & 0x0F {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            c => Rcode::Other(c),
        }
    }
}

/// The fixed 12-byte message header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Header {
    /// Transaction id chosen by the requester.
    pub id: u16,
    /// True for responses (QR bit).
    pub response: bool,
    /// Authoritative answer.
    pub authoritative: bool,
    /// Truncation flag.
    pub truncated: bool,
    /// Recursion desired.
    pub recursion_desired: bool,
    /// Recursion available.
    pub recursion_available: bool,
    /// Response code.
    pub rcode: Rcode,
}

impl Header {
    fn flags_word(&self) -> u16 {
        let mut w = 0u16;
        if self.response {
            w |= 1 << 15;
        }
        if self.authoritative {
            w |= 1 << 10;
        }
        if self.truncated {
            w |= 1 << 9;
        }
        if self.recursion_desired {
            w |= 1 << 8;
        }
        if self.recursion_available {
            w |= 1 << 7;
        }
        w | self.rcode.code() as u16
    }

    fn from_flags_word(id: u16, w: u16) -> Header {
        Header {
            id,
            response: w & (1 << 15) != 0,
            authoritative: w & (1 << 10) != 0,
            truncated: w & (1 << 9) != 0,
            recursion_desired: w & (1 << 8) != 0,
            recursion_available: w & (1 << 7) != 0,
            rcode: Rcode::from_code(w as u8),
        }
    }
}

/// A question section entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    /// Queried name.
    pub name: DomainName,
    /// Queried type.
    pub qtype: RrType,
    /// Queried class.
    pub qclass: RrClass,
}

impl Question {
    /// Creates an `IN`-class question.
    pub fn new(name: DomainName, qtype: RrType) -> Self {
        Question {
            name,
            qtype,
            qclass: RrClass::In,
        }
    }

    fn encode(&self, w: &mut Writer) {
        self.name.encode(w);
        w.u16(self.qtype.code());
        w.u16(self.qclass.code());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Question {
            name: DomainName::decode(r)?,
            qtype: RrType::from_code(r.u16()?),
            qclass: RrClass::from_code(r.u16()?),
        })
    }
}

/// A complete DNS message with all five sections.
///
/// DNS-Cache queries (§IV-B of the paper) are ordinary A-record queries whose
/// *Additional* section carries a [`RrType::DnsCache`] record listing
/// `⟨HASH(URL), FLAG⟩` tuples.
///
/// # Examples
///
/// ```
/// use ape_dnswire::{DnsMessage, UrlHash};
///
/// let query = DnsMessage::dns_cache_request(
///     7,
///     "api.movie.example".parse()?,
///     &[UrlHash::of("http://api.movie.example/id?name=dune")],
/// );
/// let wire = query.encode();
/// let parsed = DnsMessage::decode(&wire)?;
/// assert_eq!(parsed, query);
/// assert_eq!(parsed.cache_request_hashes().len(), 1);
/// # Ok::<(), ape_dnswire::WireError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DnsMessage {
    /// Header fields.
    pub header: Header,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<ResourceRecord>,
    /// Authority section.
    pub authorities: Vec<ResourceRecord>,
    /// Additional section (carries DNS-Cache records).
    pub additionals: Vec<ResourceRecord>,
}

impl DnsMessage {
    /// A plain recursive A query for `name`.
    pub fn query(id: u16, name: DomainName) -> Self {
        DnsMessage {
            header: Header {
                id,
                recursion_desired: true,
                ..Header::default()
            },
            questions: vec![Question::new(name, RrType::A)],
            ..DnsMessage::default()
        }
    }

    /// A DNS-Cache request: an A query for `name` whose Additional section
    /// carries the hashed URLs the client wants cache status for.
    pub fn dns_cache_request(id: u16, name: DomainName, url_hashes: &[crate::UrlHash]) -> Self {
        let mut msg = DnsMessage::query(id, name.clone());
        let tuples = url_hashes
            .iter()
            .map(|&h| CacheTuple::new(h, CacheFlag::Query))
            .collect();
        msg.additionals.push(ResourceRecord::new_dns_cache(
            name,
            RrClass::CacheRequest,
            tuples,
        ));
        msg
    }

    /// Builds a response to `query` answering with `ip`/`ttl` and, when
    /// `tuples` is non-empty, a DNS-Cache RESPONSE record in Additional.
    ///
    /// # Panics
    ///
    /// Panics if `query` has no question.
    pub fn dns_cache_response(
        query: &DnsMessage,
        ip: Ipv4Addr,
        ttl: u32,
        tuples: Vec<CacheTuple>,
    ) -> Self {
        let q = query.questions.first().expect("query has a question");
        let mut msg = DnsMessage {
            header: Header {
                id: query.header.id,
                response: true,
                recursion_desired: query.header.recursion_desired,
                recursion_available: true,
                ..Header::default()
            },
            questions: query.questions.clone(),
            answers: vec![ResourceRecord::new(q.name.clone(), ttl, RData::A(ip))],
            ..DnsMessage::default()
        };
        if !tuples.is_empty() {
            msg.additionals.push(ResourceRecord::new_dns_cache(
                q.name.clone(),
                RrClass::CacheResponse,
                tuples,
            ));
        }
        msg
    }

    /// The first question's name, if any.
    pub fn question_name(&self) -> Option<&DomainName> {
        self.questions.first().map(|q| &q.name)
    }

    /// The DNS-Cache REQUEST record's hashes, if this is a DNS-Cache request.
    pub fn cache_request_hashes(&self) -> Vec<crate::UrlHash> {
        self.additionals
            .iter()
            .filter(|rr| rr.class == RrClass::CacheRequest)
            .flat_map(|rr| match &rr.rdata {
                RData::DnsCache(tuples) => tuples.iter().map(|t| t.url_hash).collect(),
                _ => Vec::new(),
            })
            .collect()
    }

    /// The DNS-Cache RESPONSE tuples, if present.
    pub fn cache_response_tuples(&self) -> Vec<CacheTuple> {
        self.additionals
            .iter()
            .filter(|rr| rr.class == RrClass::CacheResponse)
            .flat_map(|rr| match &rr.rdata {
                RData::DnsCache(tuples) => tuples.clone(),
                _ => Vec::new(),
            })
            .collect()
    }

    /// Whether any Additional record is a DNS-Cache record.
    pub fn is_dns_cache_query(&self) -> bool {
        self.additionals
            .iter()
            .any(|rr| rr.rtype() == RrType::DnsCache)
    }

    /// The first A answer, if any.
    pub fn answer_ip(&self) -> Option<Ipv4Addr> {
        self.answers.iter().find_map(|rr| match rr.rdata {
            RData::A(ip) => Some(ip),
            _ => None,
        })
    }

    /// The first CNAME answer, if any.
    pub fn answer_cname(&self) -> Option<&DomainName> {
        self.answers.iter().find_map(|rr| match &rr.rdata {
            RData::Cname(n) => Some(n),
            _ => None,
        })
    }

    /// Serializes the message.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u16(self.header.id);
        w.u16(self.header.flags_word());
        w.u16(self.questions.len() as u16);
        w.u16(self.answers.len() as u16);
        w.u16(self.authorities.len() as u16);
        w.u16(self.additionals.len() as u16);
        for q in &self.questions {
            q.encode(&mut w);
        }
        for rr in self
            .answers
            .iter()
            .chain(&self.authorities)
            .chain(&self.additionals)
        {
            rr.encode(&mut w);
        }
        w.into_vec()
    }

    /// Size of the encoded message in bytes.
    pub fn wire_len(&self) -> usize {
        self.encode().len()
    }

    /// Parses a complete message; trailing bytes are an error.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] variant describing the malformation.
    pub fn decode(data: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(data);
        let id = r.u16()?;
        let flags = r.u16()?;
        let header = Header::from_flags_word(id, flags);
        let qd = r.u16()? as usize;
        let an = r.u16()? as usize;
        let ns = r.u16()? as usize;
        let ar = r.u16()? as usize;
        // Cheap sanity bound: even an empty record needs 11 bytes.
        if qd + an + ns + ar > data.len() {
            return Err(WireError::BadCount);
        }
        let mut questions = Vec::with_capacity(qd);
        for _ in 0..qd {
            questions.push(Question::decode(&mut r)?);
        }
        let decode_rrs = |count: usize, r: &mut Reader<'_>| {
            let mut out = Vec::with_capacity(count);
            for _ in 0..count {
                out.push(ResourceRecord::decode(r)?);
            }
            Ok::<_, WireError>(out)
        };
        let answers = decode_rrs(an, &mut r)?;
        let authorities = decode_rrs(ns, &mut r)?;
        let additionals = decode_rrs(ar, &mut r)?;
        if r.remaining() != 0 {
            return Err(WireError::TrailingBytes(r.remaining()));
        }
        Ok(DnsMessage {
            header,
            questions,
            answers,
            authorities,
            additionals,
        })
    }
}

impl fmt::Display for DnsMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} id={} q={} an={} ar={}",
            if self.header.response {
                "resp"
            } else {
                "query"
            },
            self.header.id,
            self.questions.len(),
            self.answers.len(),
            self.additionals.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UrlHash;

    fn name(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn plain_query_roundtrip() {
        let q = DnsMessage::query(0x1234, name("www.apple.com"));
        let wire = q.encode();
        let parsed = DnsMessage::decode(&wire).unwrap();
        assert_eq!(parsed, q);
        assert!(!parsed.header.response);
        assert!(parsed.header.recursion_desired);
        assert!(!parsed.is_dns_cache_query());
    }

    #[test]
    fn dns_cache_request_roundtrip() {
        let hashes = [UrlHash::of("http://api/a"), UrlHash::of("http://api/b")];
        let q = DnsMessage::dns_cache_request(9, name("api.example.com"), &hashes);
        let parsed = DnsMessage::decode(&q.encode()).unwrap();
        assert!(parsed.is_dns_cache_query());
        assert_eq!(parsed.cache_request_hashes(), hashes.to_vec());
    }

    #[test]
    fn dns_cache_response_carries_tuples_and_ip() {
        let q = DnsMessage::dns_cache_request(9, name("api.example.com"), &[UrlHash::of("u")]);
        let tuples = vec![
            CacheTuple::new(UrlHash::of("u"), CacheFlag::Hit),
            CacheTuple::new(UrlHash::of("v"), CacheFlag::Delegation),
        ];
        let resp =
            DnsMessage::dns_cache_response(&q, Ipv4Addr::new(10, 0, 0, 2), 30, tuples.clone());
        let parsed = DnsMessage::decode(&resp.encode()).unwrap();
        assert!(parsed.header.response);
        assert_eq!(parsed.header.id, 9);
        assert_eq!(parsed.answer_ip(), Some(Ipv4Addr::new(10, 0, 0, 2)));
        assert_eq!(parsed.cache_response_tuples(), tuples);
    }

    #[test]
    fn dummy_ip_response_with_zero_ttl() {
        // The paper's short-circuit: dummy IP with TTL 0 so the client
        // does not cache the fake address.
        let q = DnsMessage::dns_cache_request(1, name("a.b"), &[]);
        let resp = DnsMessage::dns_cache_response(
            &q,
            Ipv4Addr::UNSPECIFIED,
            0,
            vec![CacheTuple::new(UrlHash::of("x"), CacheFlag::Hit)],
        );
        let parsed = DnsMessage::decode(&resp.encode()).unwrap();
        assert_eq!(parsed.answer_ip(), Some(Ipv4Addr::UNSPECIFIED));
        assert_eq!(parsed.answers[0].ttl, 0);
    }

    #[test]
    fn cname_answers_visible() {
        let mut msg = DnsMessage::query(2, name("www.apple.com"));
        msg.header.response = true;
        msg.answers.push(ResourceRecord::new(
            name("www.apple.com"),
            300,
            RData::Cname(name("www.apple.com.edgekey.net")),
        ));
        let parsed = DnsMessage::decode(&msg.encode()).unwrap();
        assert_eq!(
            parsed.answer_cname().unwrap().to_string(),
            "www.apple.com.edgekey.net"
        );
        assert_eq!(parsed.answer_ip(), None);
    }

    #[test]
    fn flags_roundtrip_all_bits() {
        let mut h = Header {
            id: 77,
            response: true,
            authoritative: true,
            truncated: true,
            recursion_desired: true,
            recursion_available: true,
            rcode: Rcode::NxDomain,
        };
        let w = h.flags_word();
        let back = Header::from_flags_word(77, w);
        assert_eq!(back, h);
        h.rcode = Rcode::ServFail;
        assert_ne!(
            Header::from_flags_word(77, h.flags_word()).rcode,
            Rcode::NxDomain
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let q = DnsMessage::query(1, name("x.y"));
        let mut wire = q.encode();
        wire.push(0);
        assert!(matches!(
            DnsMessage::decode(&wire),
            Err(WireError::TrailingBytes(1))
        ));
    }

    #[test]
    fn truncated_header_rejected() {
        assert_eq!(DnsMessage::decode(&[0, 1, 2]), Err(WireError::Truncated));
    }

    #[test]
    fn absurd_counts_rejected() {
        let q = DnsMessage::query(1, name("x.y"));
        let mut wire = q.encode();
        // Overwrite ANCOUNT with a huge value.
        wire[6] = 0xFF;
        wire[7] = 0xFF;
        let err = DnsMessage::decode(&wire).unwrap_err();
        assert!(matches!(err, WireError::BadCount | WireError::Truncated));
    }

    #[test]
    fn wire_len_matches_encode() {
        let q = DnsMessage::dns_cache_request(5, name("a.b.c"), &[UrlHash::of("u")]);
        assert_eq!(q.wire_len(), q.encode().len());
    }

    #[test]
    fn display_mentions_kind() {
        let q = DnsMessage::query(5, name("a.b"));
        assert!(q.to_string().starts_with("query"));
    }

    #[test]
    fn empty_message_roundtrip() {
        let m = DnsMessage::default();
        assert_eq!(DnsMessage::decode(&m.encode()).unwrap(), m);
        assert_eq!(m.question_name(), None);
    }
}
