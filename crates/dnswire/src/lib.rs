//! # ape-dnswire — DNS messages with the APE-CACHE DNS-Cache extension
//!
//! An RFC1035-subset DNS message model and wire codec, extended with the
//! paper's **DNS-Cache** record (§IV-B, Fig. 8): a new RR TYPE (**300**)
//! whose CLASS field is overloaded to `REQUEST` / `RESPONSE` and whose RDATA
//! is a list of `⟨HASH(URL), FLAG⟩` tuples. Clients piggyback AP cache
//! lookups onto the DNS queries they must send anyway to locate edge cache
//! servers; APs answer with per-URL cache status for *every* URL under the
//! queried domain (the paper's batching rule).
//!
//! The codec produces real RFC1035-shaped packets (header, four sections,
//! RDLENGTH-framed records, name compression on decode), so the simulated
//! runtimes in `ape-nodes` exchange byte-accurate messages and the reported
//! wire sizes drive the network model honestly.
//!
//! ## Example
//!
//! ```
//! use ape_dnswire::{CacheFlag, CacheTuple, DnsMessage, UrlHash};
//! use std::net::Ipv4Addr;
//!
//! // Client: DNS query for the object's domain + piggybacked cache lookup.
//! let url = "http://api.movie.example/id?name=dune";
//! let query = DnsMessage::dns_cache_request(
//!     41,
//!     "api.movie.example".parse()?,
//!     &[UrlHash::of(url)],
//! );
//!
//! // AP: answers the DNS part and reports cache status for the URL.
//! let tuples = vec![CacheTuple::new(UrlHash::of(url), CacheFlag::Hit)];
//! let response = DnsMessage::dns_cache_response(&query, Ipv4Addr::new(10, 0, 0, 2), 30, tuples);
//!
//! let parsed = DnsMessage::decode(&response.encode())?;
//! assert_eq!(parsed.cache_response_tuples()[0].flag, CacheFlag::Hit);
//! # Ok::<(), ape_dnswire::WireError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bytes;
mod error;
mod hash;
mod message;
mod name;
mod rr;

pub use error::WireError;
pub use hash::{fnv1a_64, UrlHash};
pub use message::{DnsMessage, Header, Question, Rcode};
pub use name::DomainName;
pub use rr::{CacheFlag, CacheTuple, RData, ResourceRecord, RrClass, RrType};
