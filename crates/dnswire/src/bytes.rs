//! Minimal big-endian byte reader/writer used by the wire codec.

use crate::error::WireError;

/// Sequential big-endian writer over a growable buffer.
#[derive(Debug, Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Writer::default()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Overwrites a previously written big-endian u16 at `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos + 2` exceeds the buffer (internal misuse).
    pub fn patch_u16(&mut self, pos: usize, v: u16) {
        self.buf[pos..pos + 2].copy_from_slice(&v.to_be_bytes());
    }

    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Sequential big-endian reader with bounds checking.
#[derive(Debug, Clone)]
pub(crate) struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Repositions the cursor (used for compression pointers).
    pub fn seek(&mut self, pos: usize) -> Result<(), WireError> {
        if pos > self.data.len() {
            return Err(WireError::BadPointer(pos as u16));
        }
        self.pos = pos;
        Ok(())
    }

    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn u8(&mut self) -> Result<u8, WireError> {
        let v = *self.data.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(v)
    }

    pub fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_be_bytes(arr))
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = Writer::new();
        w.u8(0xAB);
        w.u16(0x1234);
        w.u32(0xDEADBEEF);
        w.u64(0x0102030405060708);
        w.bytes(b"xy");
        let buf = w.into_vec();

        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.u64().unwrap(), 0x0102030405060708);
        assert_eq!(r.take(2).unwrap(), b"xy");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn reader_detects_truncation() {
        let mut r = Reader::new(&[0x01]);
        assert_eq!(r.u16(), Err(WireError::Truncated));
    }

    #[test]
    fn patch_u16_overwrites() {
        let mut w = Writer::new();
        w.u16(0);
        w.u8(9);
        w.patch_u16(0, 0xBEEF);
        assert_eq!(w.into_vec(), vec![0xBE, 0xEF, 9]);
    }

    #[test]
    fn seek_bounds_checked() {
        let data = [0u8; 4];
        let mut r = Reader::new(&data);
        assert!(r.seek(4).is_ok());
        assert!(r.seek(5).is_err());
    }
}
