//! Stable URL hashing for DNS-Cache tuples.
//!
//! The paper transmits `HASH(URL)` rather than the raw URL "to maintain
//! confidentiality, as DNS messages are unencrypted" (§IV-B). We use FNV-1a
//! (64-bit): stable across platforms and runs, cheap on router-class CPUs.

/// A 64-bit stable hash of a URL, as carried in DNS-Cache RDATA tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UrlHash(pub u64);

impl UrlHash {
    /// Hashes a URL string.
    ///
    /// # Examples
    ///
    /// ```
    /// use ape_dnswire::UrlHash;
    ///
    /// let a = UrlHash::of("http://api.movie.example/id?name=dune");
    /// let b = UrlHash::of("http://api.movie.example/id?name=dune");
    /// assert_eq!(a, b);
    /// ```
    pub fn of(url: &str) -> Self {
        UrlHash(fnv1a_64(url.as_bytes()))
    }

    /// The raw hash value.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for UrlHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// FNV-1a 64-bit hash.
pub fn fnv1a_64(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut hash = OFFSET;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn url_hash_is_stable_and_distinct() {
        let a = UrlHash::of("http://x/1");
        let b = UrlHash::of("http://x/2");
        assert_ne!(a, b);
        assert_eq!(a, UrlHash::of("http://x/1"));
    }

    #[test]
    fn display_is_fixed_width_hex() {
        let h = UrlHash(0xab);
        assert_eq!(h.to_string(), "00000000000000ab");
    }
}
