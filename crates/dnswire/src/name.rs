//! Domain names and their RFC1035 wire representation.

use std::fmt;
use std::str::FromStr;

use crate::bytes::{Reader, Writer};
use crate::error::WireError;

/// Maximum bytes in one label.
const MAX_LABEL: usize = 63;
/// Maximum bytes in a full encoded name.
const MAX_NAME: usize = 255;
/// Upper bound on pointer chase depth (RFC names fit in far fewer).
const MAX_POINTER_HOPS: usize = 32;

/// A validated, case-insensitive DNS domain name.
///
/// Stored in lowercase; comparison and hashing are therefore
/// case-insensitive, matching DNS semantics.
///
/// # Examples
///
/// ```
/// use ape_dnswire::DomainName;
///
/// let name: DomainName = "WWW.Apple.COM".parse()?;
/// assert_eq!(name.to_string(), "www.apple.com");
/// assert_eq!(name.labels().count(), 3);
/// # Ok::<(), ape_dnswire::WireError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainName {
    /// Lowercased labels, without separators. Empty vec is the root name.
    labels: Vec<Box<[u8]>>,
}

impl DomainName {
    /// The DNS root (empty) name.
    pub fn root() -> Self {
        DomainName { labels: Vec::new() }
    }

    /// Parses a dotted name, validating label lengths and characters.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::LabelTooLong`], [`WireError::NameTooLong`] or
    /// [`WireError::BadLabel`] for invalid input.
    pub fn parse(s: &str) -> Result<Self, WireError> {
        let trimmed = s.strip_suffix('.').unwrap_or(s);
        if trimmed.is_empty() {
            return Ok(DomainName::root());
        }
        let mut labels = Vec::new();
        for label in trimmed.split('.') {
            if label.len() > MAX_LABEL {
                return Err(WireError::LabelTooLong(label.len()));
            }
            if label.is_empty() {
                return Err(WireError::BadLabel(b'.'));
            }
            let mut bytes = Vec::with_capacity(label.len());
            for b in label.bytes() {
                if !(b.is_ascii_alphanumeric() || b == b'-' || b == b'_') {
                    return Err(WireError::BadLabel(b));
                }
                bytes.push(b.to_ascii_lowercase());
            }
            labels.push(bytes.into_boxed_slice());
        }
        let name = DomainName { labels };
        let encoded = name.encoded_len();
        if encoded > MAX_NAME {
            return Err(WireError::NameTooLong(encoded));
        }
        Ok(name)
    }

    /// Whether this is the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Iterates the labels as UTF-8 strings (labels are ASCII by
    /// construction).
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.labels
            .iter()
            .map(|l| std::str::from_utf8(l).expect("labels are ascii"))
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// The registrable-ish suffix: last `n` labels as a new name.
    pub fn suffix(&self, n: usize) -> DomainName {
        let skip = self.labels.len().saturating_sub(n);
        DomainName {
            labels: self.labels[skip..].to_vec(),
        }
    }

    /// Whether `self` equals `other` or is a subdomain of it.
    pub fn is_subdomain_of(&self, other: &DomainName) -> bool {
        if other.labels.len() > self.labels.len() {
            return false;
        }
        let offset = self.labels.len() - other.labels.len();
        self.labels[offset..] == other.labels[..]
    }

    /// Length of the uncompressed wire encoding (length bytes + terminator).
    pub fn encoded_len(&self) -> usize {
        1 + self.labels.iter().map(|l| 1 + l.len()).sum::<usize>()
    }

    /// Appends the uncompressed wire encoding.
    pub(crate) fn encode(&self, w: &mut Writer) {
        for label in &self.labels {
            w.u8(label.len() as u8);
            w.bytes(label);
        }
        w.u8(0);
    }

    /// Decodes a (possibly compressed) name from the reader.
    ///
    /// Compression pointers must point strictly backwards, per RFC1035
    /// deployment practice; forward pointers are rejected.
    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let mut labels = Vec::new();
        let mut total = 1usize; // terminator
        let mut hops = 0usize;
        // Position to restore after following pointers: end of the first
        // pointer encountered.
        let mut resume: Option<usize> = None;
        loop {
            let len = r.u8()?;
            match len {
                0 => break,
                1..=63 => {
                    let bytes = r.take(len as usize)?;
                    total += 1 + bytes.len();
                    if total > MAX_NAME {
                        return Err(WireError::NameTooLong(total));
                    }
                    let mut owned = Vec::with_capacity(bytes.len());
                    for &b in bytes {
                        if !(b.is_ascii_alphanumeric() || b == b'-' || b == b'_') {
                            return Err(WireError::BadLabel(b));
                        }
                        owned.push(b.to_ascii_lowercase());
                    }
                    labels.push(owned.into_boxed_slice());
                }
                b if b & 0xC0 == 0xC0 => {
                    let low = r.u8()?;
                    let target = (((b & 0x3F) as u16) << 8 | low as u16) as usize;
                    // The pointer occupied [pos-2, pos); it must point
                    // strictly before itself.
                    if target >= r.pos() - 2 {
                        return Err(WireError::BadPointer(target as u16));
                    }
                    hops += 1;
                    if hops > MAX_POINTER_HOPS {
                        return Err(WireError::PointerLoop);
                    }
                    if resume.is_none() {
                        resume = Some(r.pos());
                    }
                    r.seek(target)?;
                }
                b => return Err(WireError::BadLabel(b)),
            }
        }
        if let Some(pos) = resume {
            r.seek(pos)?;
        }
        Ok(DomainName { labels })
    }
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return write!(f, ".");
        }
        let mut first = true;
        for label in self.labels() {
            if !first {
                write!(f, ".")?;
            }
            first = false;
            write!(f, "{label}")?;
        }
        Ok(())
    }
}

impl FromStr for DomainName {
    type Err = WireError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DomainName::parse(s)
    }
}

impl TryFrom<&str> for DomainName {
    type Error = WireError;
    fn try_from(s: &str) -> Result<Self, Self::Error> {
        DomainName::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(name: &DomainName) -> DomainName {
        let mut w = Writer::new();
        name.encode(&mut w);
        let buf = w.into_vec();
        let mut r = Reader::new(&buf);
        let out = DomainName::decode(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        out
    }

    #[test]
    fn parse_and_display_lowercases() {
        let n = DomainName::parse("WWW.Apple.COM").unwrap();
        assert_eq!(n.to_string(), "www.apple.com");
        assert_eq!(n.label_count(), 3);
    }

    #[test]
    fn trailing_dot_is_accepted() {
        assert_eq!(
            DomainName::parse("a.b.").unwrap(),
            DomainName::parse("a.b").unwrap()
        );
    }

    #[test]
    fn root_name() {
        let root = DomainName::parse("").unwrap();
        assert!(root.is_root());
        assert_eq!(root.to_string(), ".");
        assert_eq!(root.encoded_len(), 1);
        assert_eq!(roundtrip(&root), root);
    }

    #[test]
    fn rejects_bad_labels() {
        assert!(matches!(
            DomainName::parse("a..b"),
            Err(WireError::BadLabel(_))
        ));
        assert!(matches!(
            DomainName::parse("sp ace.com"),
            Err(WireError::BadLabel(b' '))
        ));
        let long = "x".repeat(64);
        assert!(matches!(
            DomainName::parse(&long),
            Err(WireError::LabelTooLong(64))
        ));
    }

    #[test]
    fn rejects_over_long_names() {
        let label = "x".repeat(60);
        let name = [label.as_str(); 5].join(".");
        assert!(matches!(
            DomainName::parse(&name),
            Err(WireError::NameTooLong(_))
        ));
    }

    #[test]
    fn wire_roundtrip() {
        let n = DomainName::parse("cdn.edge-key_1.example.com").unwrap();
        assert_eq!(roundtrip(&n), n);
    }

    #[test]
    fn encoded_len_matches_encoding() {
        let n = DomainName::parse("a.bc.def").unwrap();
        let mut w = Writer::new();
        n.encode(&mut w);
        assert_eq!(w.len(), n.encoded_len());
    }

    #[test]
    fn decode_follows_backward_pointer() {
        // "example.com" at offset 0, then a name "www" + pointer to 0.
        let mut w = Writer::new();
        DomainName::parse("example.com").unwrap().encode(&mut w);
        let ptr_name_start = w.len();
        w.u8(3);
        w.bytes(b"www");
        w.u16(0xC000); // pointer to offset 0
        let buf = w.into_vec();
        let mut r = Reader::new(&buf);
        r.seek(ptr_name_start).unwrap();
        let n = DomainName::decode(&mut r).unwrap();
        assert_eq!(n.to_string(), "www.example.com");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn decode_rejects_forward_and_self_pointers() {
        // Pointer at offset 0 pointing to itself.
        let buf = [0xC0, 0x00];
        let mut r = Reader::new(&buf);
        assert!(matches!(
            DomainName::decode(&mut r),
            Err(WireError::BadPointer(_))
        ));
    }

    #[test]
    fn subdomain_relation() {
        let apex = DomainName::parse("apple.com").unwrap();
        let www = DomainName::parse("www.apple.com").unwrap();
        assert!(www.is_subdomain_of(&apex));
        assert!(www.is_subdomain_of(&www));
        assert!(!apex.is_subdomain_of(&www));
        let other = DomainName::parse("www.orange.com").unwrap();
        assert!(!other.is_subdomain_of(&apex));
    }

    #[test]
    fn suffix_extracts_apex() {
        let www = DomainName::parse("www.apple.com").unwrap();
        assert_eq!(www.suffix(2).to_string(), "apple.com");
        assert_eq!(www.suffix(9), www);
    }

    #[test]
    fn comparison_is_case_insensitive_via_lowercasing() {
        let a: DomainName = "API.Example.com".parse().unwrap();
        let b: DomainName = "api.example.COM".parse().unwrap();
        assert_eq!(a, b);
    }
}
