//! Property tests: arbitrary DNS messages survive encode → decode, and the
//! decoder never panics on arbitrary bytes.

use std::net::Ipv4Addr;

use ape_dnswire::{
    CacheFlag, CacheTuple, DnsMessage, DomainName, Header, Question, RData, Rcode, ResourceRecord,
    RrClass, RrType, UrlHash,
};
use proptest::prelude::*;

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9_-]{1,12}").expect("valid regex")
}

fn arb_name() -> impl Strategy<Value = DomainName> {
    proptest::collection::vec(arb_label(), 1..5)
        .prop_map(|labels| DomainName::parse(&labels.join(".")).expect("valid labels"))
}

fn arb_flag() -> impl Strategy<Value = CacheFlag> {
    prop_oneof![
        Just(CacheFlag::Query),
        Just(CacheFlag::Hit),
        Just(CacheFlag::Miss),
        Just(CacheFlag::Delegation),
    ]
}

fn arb_tuple() -> impl Strategy<Value = CacheTuple> {
    (any::<u64>(), arb_flag()).prop_map(|(h, f)| CacheTuple::new(UrlHash(h), f))
}

fn arb_rdata() -> impl Strategy<Value = RData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RData::A(Ipv4Addr::new(o[0], o[1], o[2], o[3]))),
        arb_name().prop_map(RData::Cname),
        arb_name().prop_map(RData::Ns),
        proptest::string::string_regex("[ -~]{0,60}")
            .expect("valid regex")
            .prop_map(RData::Txt),
        proptest::collection::vec(any::<u8>(), 0..40).prop_map(RData::Opt),
        proptest::collection::vec(arb_tuple(), 0..8).prop_map(RData::DnsCache),
    ]
}

fn arb_record() -> impl Strategy<Value = ResourceRecord> {
    (arb_name(), any::<u32>(), arb_rdata()).prop_map(|(name, ttl, rdata)| {
        let class = match rdata {
            RData::DnsCache(_) => RrClass::CacheResponse,
            _ => RrClass::In,
        };
        ResourceRecord {
            name,
            class,
            ttl,
            rdata,
        }
    })
}

fn arb_question() -> impl Strategy<Value = Question> {
    arb_name().prop_map(|n| Question::new(n, RrType::A))
}

fn arb_header() -> impl Strategy<Value = Header> {
    (
        any::<u16>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(id, response, aa, tc, rd, ra)| Header {
            id,
            response,
            authoritative: aa,
            truncated: tc,
            recursion_desired: rd,
            recursion_available: ra,
            rcode: Rcode::NoError,
        })
}

fn arb_message() -> impl Strategy<Value = DnsMessage> {
    (
        arb_header(),
        proptest::collection::vec(arb_question(), 0..3),
        proptest::collection::vec(arb_record(), 0..4),
        proptest::collection::vec(arb_record(), 0..2),
        proptest::collection::vec(arb_record(), 0..3),
    )
        .prop_map(
            |(header, questions, answers, authorities, additionals)| DnsMessage {
                header,
                questions,
                answers,
                authorities,
                additionals,
            },
        )
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(msg in arb_message()) {
        let wire = msg.encode();
        let parsed = DnsMessage::decode(&wire).expect("decode of own encoding");
        prop_assert_eq!(parsed, msg);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = DnsMessage::decode(&bytes);
    }

    #[test]
    fn wire_len_is_consistent(msg in arb_message()) {
        prop_assert_eq!(msg.wire_len(), msg.encode().len());
    }

    #[test]
    fn valid_names_roundtrip_via_display(labels in proptest::collection::vec("[a-z0-9]{1,10}", 1..5)) {
        let text = labels.join(".");
        let name = DomainName::parse(&text).expect("valid");
        let again = DomainName::parse(&name.to_string()).expect("display output reparses");
        prop_assert_eq!(name, again);
    }

    #[test]
    fn mutated_messages_never_panic(msg in arb_message(), idx in any::<prop::sample::Index>(), bit in 0u8..8) {
        let mut wire = msg.encode();
        if !wire.is_empty() {
            let i = idx.index(wire.len());
            wire[i] ^= 1 << bit;
            let _ = DnsMessage::decode(&wire);
        }
    }
}
