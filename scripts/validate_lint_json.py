#!/usr/bin/env python3
"""Validate `ape-lint check --json` output against its checked-in schema.

Usage: validate_lint_json.py <schema.json> <report.json>

The build environment has no package registry access, so this is a
deliberately minimal JSON-Schema subset validator rather than a jsonschema
dependency. Supported keywords (everything docs/lint-report.schema.json
uses): type (object/array/string/integer/boolean), const, enum, required,
properties, additionalProperties (boolean false), items, minimum,
minLength. Unknown keywords are a validation-script error, not silently
ignored, so the schema cannot quietly outgrow the validator.
"""

import json
import sys

HANDLED = {
    "$schema",
    "title",
    "description",
    "type",
    "const",
    "enum",
    "required",
    "properties",
    "additionalProperties",
    "items",
    "minimum",
    "minLength",
}

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "integer": int,
}


def fail(path, message):
    raise SystemExit(f"validate_lint_json: {path or '$'}: {message}")


def validate(value, schema, path=""):
    unknown = set(schema) - HANDLED
    if unknown:
        fail(path, f"schema uses unsupported keywords {sorted(unknown)}")

    if "const" in schema and value != schema["const"]:
        fail(path, f"expected const {schema['const']!r}, got {value!r}")
    if "enum" in schema and value not in schema["enum"]:
        fail(path, f"{value!r} not in enum {schema['enum']}")

    if "type" in schema:
        expected = TYPES.get(schema["type"])
        if expected is None:
            fail(path, f"schema type {schema['type']!r} unsupported")
        if isinstance(value, bool) and expected is not bool:
            fail(path, f"expected {schema['type']}, got bool")
        if not isinstance(value, expected):
            fail(path, f"expected {schema['type']}, got {type(value).__name__}")

    if isinstance(value, int) and not isinstance(value, bool) and "minimum" in schema:
        if value < schema["minimum"]:
            fail(path, f"{value} < minimum {schema['minimum']}")
    if isinstance(value, str) and "minLength" in schema:
        if len(value) < schema["minLength"]:
            fail(path, f"string shorter than minLength {schema['minLength']}")

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                fail(path, f"missing required key {key!r}")
        props = schema.get("properties", {})
        if schema.get("additionalProperties") is False:
            extra = set(value) - set(props)
            if extra:
                fail(path, f"unexpected keys {sorted(extra)}")
        for key, sub in props.items():
            if key in value:
                validate(value[key], sub, f"{path}.{key}")

    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]")


def main():
    if len(sys.argv) != 3:
        raise SystemExit(__doc__.strip().splitlines()[2])
    with open(sys.argv[1]) as f:
        schema = json.load(f)
    with open(sys.argv[2]) as f:
        report = json.load(f)
    validate(report, schema)
    n_viol = len(report["violations"])
    n_waiv = len(report["waivers"])
    print(
        f"validate_lint_json: OK — {report['files_scanned']} files, "
        f"{n_viol} violation(s), {n_waiv} waiver(s), clean={report['clean']}"
    )


if __name__ == "__main__":
    main()
