#!/usr/bin/env python3
"""Validate BENCH_scale.json (the `repro bench-scale` artifact).

Usage: validate_bench_scale.py <BENCH_scale.json>

Checks, beyond well-formedness of the schema:

* the swept (aps, roam, cooperative) matrix is complete and duplicate-free,
  and matches the quick/full sweep the artifact claims,
* ratios are genuine fractions, latencies and fetch counts positive, and
  roams happen exactly in the cells whose roam rate is nonzero on a
  multi-AP grid,
* isolated cells never record peer hits (cooperation is the only source),
* at every grid of 64+ APs the cooperative cell's AP-layer hit ratio
  strictly beats the isolated one — the acceptance criterion the bench
  itself asserts before writing the artifact.

The build environment has no package registry access, so this is a
hand-rolled structural check rather than a jsonschema dependency.
"""

import json
import sys

SCHEMA = "ape-bench/scale/v1"
AP_SWEEP_FULL = (1, 16, 64, 256)
AP_SWEEP_QUICK = (1, 16)
ROAM_FULL = ("none", "low", "high")
ROAM_QUICK = ("none", "high")

CELL_KEYS = {
    "aps": int,
    "roam": str,
    "roam_per_minute": float,
    "cooperative": bool,
    "hit_ratio": float,
    "ap_layer_hit_ratio": float,
    "p99_ms": float,
    "fetches": int,
    "roams": int,
    "peer_hits": int,
    "wall_ms": float,
}


def fail(message):
    raise SystemExit(f"validate_bench_scale: {message}")


def check_cell(i, cell):
    for key, kind in CELL_KEYS.items():
        if key not in cell:
            fail(f"cells[{i}]: missing key {key!r}")
        value = cell[key]
        if kind is float and isinstance(value, int) and not isinstance(value, bool):
            value = float(value)
        if kind is bool:
            if not isinstance(value, bool):
                fail(f"cells[{i}].{key}: expected bool, got {value!r}")
        elif not isinstance(value, kind) or isinstance(value, bool):
            fail(f"cells[{i}].{key}: expected {kind.__name__}, got {value!r}")
    extra = set(cell) - set(CELL_KEYS)
    if extra:
        fail(f"cells[{i}]: unexpected keys {sorted(extra)}")
    if cell["aps"] <= 0 or cell["fetches"] <= 0 or cell["wall_ms"] <= 0:
        fail(f"cells[{i}]: aps/fetches/wall_ms must be positive")
    if cell["p99_ms"] <= 0:
        fail(f"cells[{i}].p99_ms: {cell['p99_ms']}")
    for key in ("hit_ratio", "ap_layer_hit_ratio"):
        if not 0.0 <= cell[key] <= 1.0:
            fail(f"cells[{i}].{key}: {cell[key]} is not a fraction")
    if cell["roam_per_minute"] < 0:
        fail(f"cells[{i}].roam_per_minute: {cell['roam_per_minute']}")
    roaming = cell["roam_per_minute"] > 0 and cell["aps"] > 1
    if (cell["roams"] > 0) != roaming:
        fail(
            f"cells[{i}]: {cell['roams']} roams at rate "
            f"{cell['roam_per_minute']}/min on {cell['aps']} APs"
        )
    if not cell["cooperative"] and cell["peer_hits"] != 0:
        fail(f"cells[{i}]: isolated cell recorded {cell['peer_hits']} peer hits")


def main():
    if len(sys.argv) != 2:
        raise SystemExit(__doc__.strip().splitlines()[2])
    with open(sys.argv[1]) as f:
        doc = json.load(f)

    if doc.get("schema") != SCHEMA:
        fail(f"schema: expected {SCHEMA!r}, got {doc.get('schema')!r}")
    quick = doc.get("quick")
    if not isinstance(quick, bool):
        fail(f"quick: expected bool, got {quick!r}")
    if not isinstance(doc.get("sim_seconds"), int) or doc["sim_seconds"] < 120:
        fail(f"sim_seconds: need at least two 60 s windows, got {doc.get('sim_seconds')!r}")
    cells = doc.get("cells")
    if not isinstance(cells, list):
        fail("cells: expected a list")
    for i, cell in enumerate(cells):
        check_cell(i, cell)

    ap_sweep = AP_SWEEP_QUICK if quick else AP_SWEEP_FULL
    roam_sweep = ROAM_QUICK if quick else ROAM_FULL
    by_key = {(c["aps"], c["roam"], c["cooperative"]): c for c in cells}
    if len(by_key) != len(cells):
        fail("cells: duplicate (aps, roam, cooperative) entries")
    for aps in ap_sweep:
        for roam in roam_sweep:
            for cooperative in (True, False):
                if (aps, roam, cooperative) not in by_key:
                    fail(f"missing cell: {aps} APs, roam {roam}, cooperative={cooperative}")
    if len(cells) != len(ap_sweep) * len(roam_sweep) * 2:
        fail(f"cells: expected the full matrix, got {len(cells)} entries")

    for aps in (a for a in ap_sweep if a >= 64):
        for roam in roam_sweep:
            coop = by_key[(aps, roam, True)]
            iso = by_key[(aps, roam, False)]
            if coop["ap_layer_hit_ratio"] <= iso["ap_layer_hit_ratio"]:
                fail(
                    f"{aps} APs, roam {roam}: cooperative AP-layer hit ratio "
                    f"{coop['ap_layer_hit_ratio']} does not beat isolated "
                    f"{iso['ap_layer_hit_ratio']}"
                )

    print(
        f"validate_bench_scale: OK — {len(cells)} cells over grids "
        f"{list(ap_sweep)} x roam {list(roam_sweep)}, quick={quick}"
    )


if __name__ == "__main__":
    main()
