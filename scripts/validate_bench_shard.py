#!/usr/bin/env python3
"""Validate BENCH_shard.json (the `repro bench-shard` artifact).

Usage: validate_bench_shard.py <BENCH_shard.json>

Checks, beyond well-formedness of the schema:

* every swept population has a fleet cell at shards {1, 2, 4, 8} plus a
  single-shard boxed baseline cell,
* within one population, every fleet cell processed the *same* number of
  events and settled the same number of fetches — the bench asserts
  bitwise-identical fingerprints across shard counts, and the artifact
  must reflect that invariance,
* rates are positive and barrier-wait fractions are sane fractions,
* the headline block is consistent with the cells it summarizes.

The build environment has no package registry access, so this is a
hand-rolled structural check rather than a jsonschema dependency.
"""

import json
import sys

SCHEMA = "ape-bench/shard/v1"
FLEET_SHARDS = (1, 2, 4, 8)

CELL_KEYS = {
    "repr": str,
    "clients": int,
    "shards": int,
    "events": int,
    "wall_ms": float,
    "events_per_sec": int,
    "fetches": int,
    "fetches_per_sec": int,
    "barrier_wait_fraction": float,
}


def fail(message):
    raise SystemExit(f"validate_bench_shard: {message}")


def check_cell(i, cell):
    for key, kind in CELL_KEYS.items():
        if key not in cell:
            fail(f"cells[{i}]: missing key {key!r}")
        value = cell[key]
        if kind is float and isinstance(value, int) and not isinstance(value, bool):
            value = float(value)
        if not isinstance(value, kind) or isinstance(value, bool):
            fail(f"cells[{i}].{key}: expected {kind.__name__}, got {value!r}")
    extra = set(cell) - set(CELL_KEYS)
    if extra:
        fail(f"cells[{i}]: unexpected keys {sorted(extra)}")
    if cell["repr"] not in ("fleet", "boxed"):
        fail(f"cells[{i}].repr: {cell['repr']!r}")
    for key in ("clients", "events", "wall_ms", "events_per_sec", "fetches",
                "fetches_per_sec"):
        if cell[key] <= 0:
            fail(f"cells[{i}].{key}: must be positive, got {cell[key]}")
    if not 0.0 <= cell["barrier_wait_fraction"] <= 1.0:
        fail(f"cells[{i}].barrier_wait_fraction: {cell['barrier_wait_fraction']}")


def main():
    if len(sys.argv) != 2:
        raise SystemExit(__doc__.strip().splitlines()[2])
    with open(sys.argv[1]) as f:
        doc = json.load(f)

    if doc.get("schema") != SCHEMA:
        fail(f"schema: expected {SCHEMA!r}, got {doc.get('schema')!r}")
    sizes = doc.get("sizes")
    if not isinstance(sizes, list) or not sizes:
        fail("sizes: expected a non-empty list")
    cells = doc.get("cells")
    if not isinstance(cells, list):
        fail("cells: expected a list")
    for i, cell in enumerate(cells):
        check_cell(i, cell)

    by_key = {(c["repr"], c["clients"], c["shards"]): c for c in cells}
    if len(by_key) != len(cells):
        fail("cells: duplicate (repr, clients, shards) entries")
    for clients in sizes:
        for shards in FLEET_SHARDS:
            if ("fleet", clients, shards) not in by_key:
                fail(f"missing fleet cell: {clients} clients @ {shards} shards")
        if ("boxed", clients, 1) not in by_key:
            fail(f"missing boxed baseline cell: {clients} clients")
        # Shard-count invariance: the runs are bitwise identical, so the
        # recorded work must match exactly across the fleet shard sweep.
        base = by_key[("fleet", clients, FLEET_SHARDS[0])]
        for shards in FLEET_SHARDS[1:]:
            cell = by_key[("fleet", clients, shards)]
            for key in ("events", "fetches"):
                if cell[key] != base[key]:
                    fail(
                        f"fleet {clients} clients: {key} diverged at "
                        f"{shards} shards ({cell[key]} != {base[key]})"
                    )

    headline = doc.get("headline")
    if not isinstance(headline, dict):
        fail("headline: expected an object")
    largest = max(sizes)
    if headline.get("clients") != largest:
        fail(f"headline.clients: expected {largest}, got {headline.get('clients')}")
    fleet = by_key[("fleet", largest, 8)]["events_per_sec"]
    boxed = by_key[("boxed", largest, 1)]["events_per_sec"]
    if headline.get("fleet_8shard_events_per_sec") != fleet:
        fail("headline.fleet_8shard_events_per_sec does not match its cell")
    if headline.get("boxed_baseline_events_per_sec") != boxed:
        fail("headline.boxed_baseline_events_per_sec does not match its cell")
    speedup = headline.get("speedup")
    if not isinstance(speedup, (int, float)) or speedup <= 0:
        fail(f"headline.speedup: {speedup!r}")
    if abs(speedup - fleet / boxed) > 0.011:
        fail(f"headline.speedup {speedup} inconsistent with cells ({fleet}/{boxed})")

    print(
        f"validate_bench_shard: OK — {len(cells)} cells over populations "
        f"{sizes}, quick={doc.get('quick')}, headline speedup {speedup:.2f}x"
    )


if __name__ == "__main__":
    main()
