//! System-level property tests: random small deployments must satisfy the
//! architecture's invariants regardless of workload shape.

use ape_appdag::DummyAppConfig;
use ape_nodes::ApNode;
use ape_proto::names;
use ape_simnet::SimDuration;
use ape_workload::ScheduleConfig;
use apecache::{build, collect, synthetic_suite, System, TestbedConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Scenario {
    system: System,
    apps: usize,
    size_hi: u64,
    frequency: f64,
    minutes: u64,
    seed: u64,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        prop_oneof![
            Just(System::ApeCache),
            Just(System::ApeCacheLru),
            Just(System::WiCache),
            Just(System::EdgeCache),
        ],
        2usize..8,
        20_000u64..300_000,
        1.0f64..4.0,
        2u64..4,
        any::<u64>(),
    )
        .prop_map(
            |(system, apps, size_hi, frequency, minutes, seed)| Scenario {
                system,
                apps,
                size_hi,
                frequency,
                minutes,
                seed,
            },
        )
}

fn run(scenario: &Scenario) -> (apecache::RunResult, u64, u64) {
    let dummy = DummyAppConfig::default().with_size_range(1_000, scenario.size_hi);
    let suite = synthetic_suite(scenario.apps, &dummy, scenario.seed);
    let mut config = TestbedConfig::new(scenario.system, suite);
    config.seed = scenario.seed;
    config.schedule = ScheduleConfig {
        apps: scenario.apps,
        avg_per_minute: scenario.frequency,
        zipf_exponent: 0.8,
        duration: SimDuration::from_mins(scenario.minutes),
    };
    let mut bed = build(&config);
    bed.world.run_for(SimDuration::from_mins(scenario.minutes));
    let cached_bytes = bed.world.node::<ApNode>(bed.ap).cached_bytes();
    let capacity = config.ap.cache_capacity;
    let result = collect(scenario.system, &mut bed);
    (result, cached_bytes, capacity)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn invariants_hold_for_random_scenarios(scenario in arb_scenario()) {
        let (result, cached_bytes, capacity) = run(&scenario);
        let report = &result.report;

        // Cache capacity is inviolable.
        prop_assert!(cached_bytes <= capacity, "{cached_bytes} > {capacity}");

        // Counters are internally consistent.
        prop_assert!(report.hits <= report.requests);
        prop_assert!(report.high_hits <= report.high_requests);
        prop_assert!(report.high_requests <= report.requests);
        let ratio = report.hit_ratio();
        prop_assert!((0.0..=1.0).contains(&ratio));

        // Healthy network ⇒ no failures; work happened.
        prop_assert_eq!(report.failures, 0);
        prop_assert!(report.executions > 0);
        prop_assert!(report.requests > 0);

        // The Edge Cache baseline never records AP hits.
        if scenario.system == System::EdgeCache {
            prop_assert_eq!(report.hits, 0);
        }
    }

    #[test]
    fn reruns_are_bit_identical(scenario in arb_scenario()) {
        let (a, a_bytes, _) = run(&scenario);
        let (b, b_bytes, _) = run(&scenario);
        prop_assert_eq!(a.report, b.report);
        prop_assert_eq!(a_bytes, b_bytes);
        prop_assert_eq!(
            a.metrics.counter(names::NET_MESSAGES),
            b.metrics.counter(names::NET_MESSAGES)
        );
    }
}
