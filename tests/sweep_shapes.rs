//! Sweep-shape tests: the trends behind Tables IV–VI and Fig. 13 must
//! point the right way (crossovers and monotonic directions, not exact
//! values).

use ape_appdag::DummyAppConfig;
use ape_simnet::SimDuration;
use ape_workload::ScheduleConfig;
use apecache::{paper_suite, run_system, Summary, System, TestbedConfig};

// Long enough to get past cold-start misses: the few-apps ceiling claim
// (table6 shape) needs the cache warm for most of the run. 8 minutes sat
// right on the threshold; 12 is comfortably in steady state.
const MINUTES: u64 = 12;

fn run(system: System, dummy: &DummyAppConfig, apps: usize, frequency: f64) -> Summary {
    let mut suite = paper_suite(dummy, 42);
    suite.truncate(apps);
    let mut config = TestbedConfig::new(system, suite);
    config.schedule = ScheduleConfig {
        apps,
        avg_per_minute: frequency,
        zipf_exponent: 0.8,
        duration: SimDuration::from_mins(MINUTES),
    };
    let mut result = run_system(&config, SimDuration::from_mins(MINUTES));
    result.summary()
}

#[test]
fn table4_shape_hit_ratio_falls_as_objects_grow() {
    // Three points of the size sweep; the hit ratio must fall hard from
    // 1–100 kb to 1–500 kb (paper: 0.632 → 0.226).
    let small = run(
        System::ApeCache,
        &DummyAppConfig::default().with_size_range(1_000, 100_000),
        30,
        3.0,
    );
    let large = run(
        System::ApeCache,
        &DummyAppConfig::default().with_size_range(1_000, 500_000),
        30,
        3.0,
    );
    assert!(
        small.hit_ratio > large.hit_ratio + 0.2,
        "small {:.3} vs large {:.3}",
        small.hit_ratio,
        large.hit_ratio
    );
    // High-priority stays above average at both points (PACM's claim).
    assert!(small.high_priority_hit_ratio >= small.hit_ratio);
    assert!(large.high_priority_hit_ratio >= large.hit_ratio);
}

#[test]
fn table6_shape_few_apps_fit_entirely() {
    // With 5 apps everything fits: hit ratio near its ceiling
    // (paper: 0.965); with 30 apps the cache is oversubscribed.
    let few = run(System::ApeCache, &DummyAppConfig::default(), 5, 3.0);
    let many = run(System::ApeCache, &DummyAppConfig::default(), 30, 3.0);
    assert!(few.hit_ratio > 0.85, "few-apps hit {:.3}", few.hit_ratio);
    assert!(
        few.hit_ratio > many.hit_ratio + 0.15,
        "few {:.3} vs many {:.3}",
        few.hit_ratio,
        many.hit_ratio
    );
}

#[test]
fn fig13a_shape_latency_rises_with_object_size() {
    let small = run(
        System::ApeCache,
        &DummyAppConfig::default().with_size_range(1_000, 100_000),
        30,
        3.0,
    );
    let large = run(
        System::ApeCache,
        &DummyAppConfig::default().with_size_range(1_000, 400_000),
        30,
        3.0,
    );
    assert!(
        large.app_latency_ms > small.app_latency_ms,
        "large {:.1} vs small {:.1}",
        large.app_latency_ms,
        small.app_latency_ms
    );
}

#[test]
fn fig13c_shape_latency_rises_with_app_quantity() {
    let few = run(System::ApeCache, &DummyAppConfig::default(), 5, 3.0);
    let many = run(System::ApeCache, &DummyAppConfig::default(), 30, 3.0);
    assert!(
        many.app_latency_ms > few.app_latency_ms,
        "many {:.1} vs few {:.1}",
        many.app_latency_ms,
        few.app_latency_ms
    );
    // APE-CACHE stays ahead of the Edge baseline at both ends.
    let edge_few = run(System::EdgeCache, &DummyAppConfig::default(), 5, 3.0);
    let edge_many = run(System::EdgeCache, &DummyAppConfig::default(), 30, 3.0);
    assert!(few.app_latency_ms < edge_few.app_latency_ms);
    assert!(many.app_latency_ms < edge_many.app_latency_ms);
}

#[test]
fn table5_shape_frequency_helps_or_holds() {
    // Lower usage frequency lets objects expire before re-use; the hit
    // ratio at 1/min must not exceed the one at 3/min by any margin
    // (paper: 0.507 at 1/min vs 0.632 at 3/min).
    let slow = run(System::ApeCache, &DummyAppConfig::default(), 30, 1.0);
    let fast = run(System::ApeCache, &DummyAppConfig::default(), 30, 3.0);
    assert!(
        fast.hit_ratio + 0.02 >= slow.hit_ratio,
        "fast {:.3} vs slow {:.3}",
        fast.hit_ratio,
        slow.hit_ratio
    );
}
