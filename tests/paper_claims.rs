//! The paper's headline claims (EQ1–EQ3), pinned as qualitative shape
//! assertions against the full simulated testbed.
//!
//! These are deliberately banded, not exact: the substrate is a simulator
//! calibrated to the paper's measured path characteristics, so "who wins,
//! by roughly what factor" must hold even though absolute milliseconds
//! differ. `EXPERIMENTS.md` records the measured-vs-paper numbers.

use ape_appdag::DummyAppConfig;
use ape_simnet::SimDuration;
use ape_workload::ScheduleConfig;
use apecache::{paper_suite, run_system, Summary, System, TestbedConfig};

const SIM_MINUTES: u64 = 10;
const APPS: usize = 30;

fn run(system: System) -> Summary {
    let mut suite = paper_suite(&DummyAppConfig::default(), 42);
    suite.truncate(APPS);
    let mut config = TestbedConfig::new(system, suite);
    config.schedule = ScheduleConfig {
        apps: APPS,
        avg_per_minute: 3.0,
        zipf_exponent: 0.8,
        duration: SimDuration::from_mins(SIM_MINUTES),
    };
    let mut result = run_system(&config, SimDuration::from_mins(SIM_MINUTES));
    result.summary()
}

fn object_level(s: &Summary) -> f64 {
    let retrieval = if s.retrieval_hit_ms > 0.0 {
        s.retrieval_hit_ms
    } else {
        s.retrieval_edge_ms
    };
    s.lookup_ms + retrieval
}

#[test]
fn eq1_object_level_latency_ordering_and_reductions() {
    let ape = run(System::ApeCache);
    let wicache = run(System::WiCache);
    let edge = run(System::EdgeCache);

    let (a, w, e) = (
        object_level(&ape),
        object_level(&wicache),
        object_level(&edge),
    );
    assert!(
        a < w && w < e,
        "object-level ordering: ape {a:.1} wicache {w:.1} edge {e:.1}"
    );

    // Paper: 51.7% vs Wi-Cache and 74.5% vs Edge Cache. Bands: 30–70% and
    // 50–85%.
    let vs_wicache = 1.0 - a / w;
    let vs_edge = 1.0 - a / e;
    assert!(
        (0.30..0.70).contains(&vs_wicache),
        "reduction vs Wi-Cache {vs_wicache:.2}"
    );
    assert!(
        (0.50..0.85).contains(&vs_edge),
        "reduction vs Edge {vs_edge:.2}"
    );

    // Lookup anatomy: APE-CACHE's piggybacked lookup is millisecond-level;
    // Wi-Cache pays its remote controller on every lookup.
    assert!(ape.lookup_ms < 15.0, "APE lookup {:.1}", ape.lookup_ms);
    assert!(
        wicache.lookup_ms > 20.0,
        "Wi-Cache lookup {:.1}",
        wicache.lookup_ms
    );
    // Retrieval anatomy: AP-served hits are several times faster than
    // edge fetches.
    assert!(
        ape.retrieval_hit_ms * 2.5 < edge.retrieval_edge_ms,
        "hit {:.1} vs edge {:.1}",
        ape.retrieval_hit_ms,
        edge.retrieval_edge_ms
    );
}

#[test]
fn eq2_app_level_latency_ordering() {
    let ape = run(System::ApeCache);
    let lru = run(System::ApeCacheLru);
    let wicache = run(System::WiCache);
    let edge = run(System::EdgeCache);

    // PACM's latency edge over LRU is small at short horizons (the paper
    // reports 30 vs 42 ms over an hour); assert it never *loses* beyond
    // noise while its hit-ratio advantage — the mechanism — is strict.
    assert!(
        ape.app_latency_ms < lru.app_latency_ms * 1.05,
        "PACM vs LRU latency: {:.1} vs {:.1}",
        ape.app_latency_ms,
        lru.app_latency_ms
    );
    assert!(
        ape.hit_ratio > lru.hit_ratio,
        "PACM hit {:.3} vs LRU {:.3}",
        ape.hit_ratio,
        lru.hit_ratio
    );
    assert!(
        ape.app_latency_ms < wicache.app_latency_ms,
        "APE beats Wi-Cache: {:.1} vs {:.1}",
        ape.app_latency_ms,
        wicache.app_latency_ms
    );
    // Paper: 76% reduction vs Edge Cache; band: ≥ 35%.
    let vs_edge = 1.0 - ape.app_latency_ms / edge.app_latency_ms;
    assert!(vs_edge > 0.35, "app-level reduction vs Edge {vs_edge:.2}");

    // Tail latency improves too (Fig. 12's p95 bars).
    assert!(
        ape.app_latency_p95_ms < edge.app_latency_p95_ms,
        "p95: {:.1} vs {:.1}",
        ape.app_latency_p95_ms,
        edge.app_latency_p95_ms
    );
}

#[test]
fn eq2_real_apps_improve() {
    let ape = run(System::ApeCache);
    let edge = run(System::EdgeCache);
    for app in ["MovieTrailer", "VirtualHome"] {
        let a = ape.per_app_latency_ms.get(app).expect("app ran").0;
        let e = edge.per_app_latency_ms.get(app).expect("app ran").0;
        assert!(a < e, "{app}: APE {a:.1} vs Edge {e:.1}");
    }
}

#[test]
fn pacm_prioritizes_high_priority_objects() {
    let pacm = run(System::ApeCache);
    let lru = run(System::ApeCacheLru);
    // The paper's Tables IV–VI claim: PACM's high-priority hit ratio
    // consistently exceeds LRU's.
    assert!(
        pacm.high_priority_hit_ratio > lru.high_priority_hit_ratio + 0.05,
        "high-priority: PACM {:.3} vs LRU {:.3}",
        pacm.high_priority_hit_ratio,
        lru.high_priority_hit_ratio
    );
    // And PACM's high-priority ratio exceeds its own average.
    assert!(
        pacm.high_priority_hit_ratio > pacm.hit_ratio,
        "PACM high {:.3} vs avg {:.3}",
        pacm.high_priority_hit_ratio,
        pacm.hit_ratio
    );
}

#[test]
fn eq3_ap_overhead_is_modest() {
    let ape = run(System::ApeCache);
    // Paper: at most +6% CPU and 13 MB of memory on the AP.
    assert!(ape.ap_cpu_max < 0.10, "peak AP cpu {:.3}", ape.ap_cpu_max);
    assert!(
        ape.ape_mem_mb_max < 15.0,
        "peak APE memory {:.1} MB",
        ape.ape_mem_mb_max
    );
    // And the cache actually worked while staying cheap.
    assert!(ape.hit_ratio > 0.4, "hit ratio {:.3}", ape.hit_ratio);
    assert_eq!(ape.failures, 0, "no failed fetches on a healthy network");
}
