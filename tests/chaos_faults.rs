//! Chaos under a lossy radio: randomized [`FaultPlan`]s composed with
//! steady WiFi loss must leave the system *terminated and drained* — every
//! scheduled execution reaches a terminal state (success or failure, never
//! a hang) and every pending-state map on clients, AP and LDNS is empty
//! once the retry chains have had time to run out.
//!
//! Each scenario is additionally pinned to be tie-break-perturbation
//! invariant: the same seed and fault plan produce bitwise-identical world
//! fingerprints no matter how same-timestamp ties are broken, so a failure
//! here is replayable at will.

use ape_appdag::DummyAppConfig;
use ape_nodes::{ApNode, ClientNode, LdnsNode};
use ape_proto::names;
use ape_simnet::{FaultPlan, SimDuration, SimTime};
use ape_workload::ScheduleConfig;
use apecache::{build, collect, synthetic_suite, System, Testbed, TestbedConfig};

const RUN: SimDuration = SimDuration::from_mins(6);

/// Post-schedule grace: the worst surviving retry chain (client DNS
/// retries feeding HTTP attempts with 4+8+16 s backoff on top of the AP's
/// reap/retry cycles) resolves in under a minute; 300 s gives every
/// straggler room without hiding a genuine hang behind a short horizon.
const GRACE: SimDuration = SimDuration::from_secs(300);

/// Tie-break permutation keys (same set as `determinism_perturbation.rs`).
const PERTURBATION_KEYS: [u64; 4] = [
    0x9E37_79B9_7F4A_7C15,
    0xD1B5_4A32_D192_ED03,
    0xA5A5_A5A5_A5A5_A5A5,
    0x0123_4567_89AB_CDEF,
];

fn config(seed: u64, key: Option<u64>) -> TestbedConfig {
    let suite = synthetic_suite(5, &DummyAppConfig::default(), seed);
    let mut cfg = TestbedConfig::new(System::ApeCache, suite);
    cfg.schedule = ScheduleConfig {
        apps: 5,
        avg_per_minute: 3.0,
        zipf_exponent: 0.8,
        duration: RUN,
    };
    cfg.seed = seed;
    cfg.wifi_loss = 0.05;
    cfg.tie_perturbation = key;
    cfg
}

/// splitmix64 — a tiny self-contained generator so the *plan* depends only
/// on its seed, never on world state or tie order.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Builds a randomized plan over the bed's real topology: four windows,
/// cycling through link-down, loss-burst and delay-spike across the
/// client↔AP, AP↔LDNS and AP↔edge links.
fn random_plan(bed: &Testbed, plan_seed: u64) -> FaultPlan {
    let mut mix = Mix(plan_seed);
    let mut plan = FaultPlan::new();
    for i in 0..4u64 {
        let (a, b) = match mix.below(3) {
            0 => (
                bed.clients[mix.below(bed.clients.len() as u64) as usize],
                bed.ap,
            ),
            1 => (bed.ap, bed.ldns),
            _ => (bed.ap, bed.edge),
        };
        let start = SimTime::from_secs(30 + mix.below(240));
        let end = SimTime::from_nanos(
            start.as_nanos() + SimDuration::from_secs(5 + mix.below(30)).as_nanos(),
        );
        plan = match i % 3 {
            0 => plan.link_down(a, b, start, end),
            1 => plan.loss_burst(a, b, start, end, 0.2 + mix.below(50) as f64 / 100.0),
            _ => plan.delay_spike(
                a,
                b,
                start,
                end,
                SimDuration::from_millis(10 + mix.below(80)),
            ),
        };
    }
    plan
}

/// Pending-state entries that survived the grace period, labelled for the
/// assertion message. Empty means every map drained.
fn undrained(bed: &mut Testbed) -> Vec<String> {
    let mut leftovers = Vec::new();
    for &client in &bed.clients.clone() {
        let name = bed.world.node_name(client).to_owned();
        for (map, n) in bed.world.node::<ClientNode>(client).pending_counts() {
            if n > 0 {
                leftovers.push(format!("{name}:{map}={n}"));
            }
        }
    }
    for (map, n) in bed.world.node::<ApNode>(bed.ap).pending_counts() {
        if n > 0 {
            leftovers.push(format!("ap:{map}={n}"));
        }
    }
    let n = bed.world.node::<LdnsNode>(bed.ldns).pending_count();
    if n > 0 {
        leftovers.push(format!("ldns:pending={n}"));
    }
    leftovers
}

struct ChaosOutcome {
    fingerprint: String,
    scheduled: u64,
    executions: u64,
    leftovers: Vec<String>,
}

fn run_chaos(plan_seed: Option<u64>, key: Option<u64>) -> ChaosOutcome {
    let cfg = config(29, key);
    let mut bed = build(&cfg);
    if let Some(plan_seed) = plan_seed {
        bed.world.set_fault_plan(random_plan(&bed, plan_seed));
    }
    bed.world.run_for(RUN + GRACE);
    let fingerprint = bed.world.fingerprint().to_string();
    let leftovers = undrained(&mut bed);
    let scheduled = bed.schedule.len() as u64;
    let result = collect(cfg.system, &mut bed);
    ChaosOutcome {
        fingerprint,
        scheduled,
        executions: result.report.executions,
        leftovers,
    }
}

fn assert_terminated_and_drained(outcome: &ChaosOutcome, label: &str) {
    assert!(outcome.scheduled > 0, "{label}: schedule generated work");
    assert_eq!(
        outcome.executions, outcome.scheduled,
        "{label}: every scheduled execution reaches a terminal state"
    );
    assert!(
        outcome.leftovers.is_empty(),
        "{label}: pending state leaked after drain: {}",
        outcome.leftovers.join(", ")
    );
}

#[test]
fn randomized_fault_plans_terminate_drained_and_tie_invariant() {
    for plan_seed in [11, 23, 47] {
        let baseline = run_chaos(Some(plan_seed), None);
        assert_terminated_and_drained(&baseline, &format!("plan {plan_seed}"));
        for key in PERTURBATION_KEYS {
            let perturbed = run_chaos(Some(plan_seed), Some(key));
            assert_eq!(
                perturbed.fingerprint, baseline.fingerprint,
                "plan {plan_seed} diverged under tie perturbation {key:#x}"
            );
            assert_eq!(perturbed.executions, baseline.executions);
        }
    }
}

#[test]
fn lossy_wifi_run_drains_and_recovery_counters_fire() {
    let cfg = config(29, None);
    let mut bed = build(&cfg);
    bed.world.run_for(RUN + GRACE);
    let leftovers = undrained(&mut bed);
    assert!(
        leftovers.is_empty(),
        "pending state leaked: {}",
        leftovers.join(", ")
    );
    let scheduled = bed.schedule.len() as u64;
    let result = collect(cfg.system, &mut bed);
    assert_eq!(result.report.executions, scheduled);
    assert!(
        result.metrics.counter(names::NET_DROPPED) > 0,
        "5% radio loss dropped packets"
    );
    let retries = result.metrics.counter(names::CLIENT_DNS_RETRIES)
        + result.metrics.counter(names::CLIENT_HTTP_RETRIES)
        + result.metrics.counter(names::AP_DNS_UPSTREAM_RETRIES)
        + result.metrics.counter(names::AP_DELEGATION_RETRIES);
    assert!(retries > 0, "recovery machinery absorbed the loss");
}

#[test]
fn lossy_wifi_run_is_tie_break_invariant() {
    let baseline = run_chaos(None, None);
    assert_terminated_and_drained(&baseline, "lossy baseline");
    for key in PERTURBATION_KEYS {
        let perturbed = run_chaos(None, Some(key));
        assert_eq!(
            perturbed.fingerprint, baseline.fingerprint,
            "lossy run diverged under tie perturbation {key:#x}"
        );
    }
}
