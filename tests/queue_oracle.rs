//! Live differential check of the timing-wheel scheduler on the default
//! testbed.
//!
//! [`World::enable_queue_oracle`](ape_simnet::World::enable_queue_oracle)
//! mirrors every event-queue push and pop of a run against the frozen
//! pre-wheel binary heap (`ape_simnet::reference`); the first pop where the
//! wheel and the heap disagree on `(at, seq)` panics inside the queue. This
//! test drives full APE-CACHE testbed runs through that mirror — under the
//! unperturbed baseline and all four tie-perturbation keys the determinism
//! harness sweeps — and additionally pins that mirrored runs produce
//! bitwise-identical fingerprints to oracle-off runs (the oracle must
//! observe, never influence).

use ape_appdag::DummyAppConfig;
use ape_simnet::{SimDuration, TraceConfig};
use ape_workload::ScheduleConfig;
use apecache::{build, synthetic_suite, System, TestbedConfig};

/// Same keys as `tests/determinism_perturbation.rs`.
const PERTURBATION_KEYS: [u64; 4] = [
    0x9E37_79B9_7F4A_7C15,
    0xD1B5_4A32_D192_ED03,
    0xA5A5_A5A5_A5A5_A5A5,
    0x0123_4567_89AB_CDEF,
];

/// Runs the default testbed for two simulated minutes and returns the
/// world fingerprint.
fn run(key: Option<u64>, oracle: bool) -> String {
    let suite = synthetic_suite(5, &DummyAppConfig::default(), 11);
    let mut cfg = TestbedConfig::new(System::ApeCache, suite);
    cfg.schedule = ScheduleConfig {
        apps: 5,
        avg_per_minute: 3.0,
        zipf_exponent: 0.8,
        duration: SimDuration::from_mins(2),
    };
    cfg.trace = TraceConfig::enabled();
    cfg.tie_perturbation = key;
    let mut bed = build(&cfg);
    if oracle {
        bed.world.enable_queue_oracle();
    }
    bed.world.run_for(SimDuration::from_mins(2));
    bed.world.fingerprint().to_string()
}

#[test]
fn wheel_matches_reference_heap_across_perturbed_testbed_runs() {
    for key in std::iter::once(None).chain(PERTURBATION_KEYS.into_iter().map(Some)) {
        let mirrored = run(key, true);
        let plain = run(key, false);
        assert_eq!(
            mirrored, plain,
            "oracle changed the run it was mirroring (key {key:?})"
        );
    }
}
