//! Roaming under fire: clients walking between APs while the radio drops
//! packets and a scheduled [`FaultPlan`] partitions, lossifies and delays
//! the very links they depend on. The system must come out *terminated and
//! drained* — every scheduled execution reaches a terminal state, no AP
//! keeps pending forwards, DNS waits, delegations or peer requests for a
//! client that left — and the whole ordeal must be bitwise invariant under
//! every tie-break-perturbation key, so any failure replays exactly.
//!
//! This is the pin for the roam-departure bugfix: before APs learned to
//! cancel state for roam-departed clients, a mid-flight roam left the old
//! AP's `pending_forwards`/`awaiting_dns` entries to the reaper's timeout
//! path, indistinguishable from real timeouts.

use ape_appdag::DummyAppConfig;
use ape_nodes::{ApNode, ClientNode, LdnsNode};
use ape_proto::names;
use ape_simnet::{FaultPlan, SimDuration, SimTime};
use ape_workload::ScheduleConfig;
use apecache::{
    build_topology, collect_topology, synthetic_suite, System, TestbedConfig, Topology,
    TopologyConfig,
};

const RUN: SimDuration = SimDuration::from_mins(4);

/// Post-schedule grace (same rationale as `chaos_faults.rs`): the worst
/// surviving retry chain resolves in under a minute; 300 s gives roam
/// stragglers — a client whose fetch was cancelled by its own departure
/// retries via the new AP — room without hiding a genuine hang.
const GRACE: SimDuration = SimDuration::from_secs(300);

/// Tie-break permutation keys (same set as `chaos_faults.rs`).
const PERTURBATION_KEYS: [u64; 4] = [
    0x9E37_79B9_7F4A_7C15,
    0xD1B5_4A32_D192_ED03,
    0xA5A5_A5A5_A5A5_A5A5,
    0x0123_4567_89AB_CDEF,
];

/// A 3×3 cooperative grid with briskly roaming clients on a 3% lossy
/// radio: small enough to drain-check in CI, busy enough that roams race
/// in-flight DNS forwards and delegations constantly.
fn config(seed: u64, key: Option<u64>) -> TopologyConfig {
    let suite = synthetic_suite(5, &DummyAppConfig::default(), seed);
    let mut base = TestbedConfig::new(System::ApeCache, suite);
    base.schedule = ScheduleConfig {
        // Dense traffic: roams must regularly race in-flight forwards and
        // delegations, or the cancel-on-departure path goes untested.
        apps: 5,
        avg_per_minute: 30.0,
        zipf_exponent: 0.8,
        duration: RUN,
    };
    base.seed = seed;
    base.wifi_loss = 0.03;
    base.tie_perturbation = key;
    // A cache far smaller than the suite's working set keeps the APs
    // delegating for the whole run instead of settling into all-hits —
    // delegation windows are the in-flight state roams must race.
    base.ap.cache_capacity = 150_000;
    TopologyConfig::new(base, 9)
        .with_clients_per_ap(2)
        .with_roam_rate(6.0)
}

/// splitmix64 — the plan depends only on its seed, never on world state.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Randomized plan over the grid's real links: four windows cycling
/// through link-down, loss-burst and delay-spike across client↔home-AP,
/// AP↔LDNS, AP↔edge and AP↔AP segments.
fn random_plan(top: &Topology, plan_seed: u64) -> FaultPlan {
    let mut mix = Mix(plan_seed);
    let mut plan = FaultPlan::new();
    for i in 0..4u64 {
        let ap = top.aps[mix.below(top.aps.len() as u64) as usize];
        let (a, b) = match mix.below(4) {
            0 => {
                let g = mix.below(top.clients.len() as u64) as usize;
                (top.clients[g], top.aps[top.client_home[g]])
            }
            1 => (ap, top.ldns),
            2 => (ap, top.edge),
            // A neighbor segment: APs 4 (center) and 1 always exist on the
            // 3×3 grid and are adjacent.
            _ => (top.aps[4], top.aps[1]),
        };
        let start = SimTime::from_secs(30 + mix.below(150));
        let end = SimTime::from_nanos(
            start.as_nanos() + SimDuration::from_secs(5 + mix.below(30)).as_nanos(),
        );
        plan = match i % 3 {
            0 => plan.link_down(a, b, start, end),
            1 => plan.loss_burst(a, b, start, end, 0.2 + mix.below(50) as f64 / 100.0),
            _ => plan.delay_spike(
                a,
                b,
                start,
                end,
                SimDuration::from_millis(10 + mix.below(80)),
            ),
        };
    }
    plan
}

/// Pending-state entries that survived the grace period, across every
/// client, every AP, and the LDNS. Empty means every map drained.
fn undrained(top: &mut Topology) -> Vec<String> {
    let mut leftovers = Vec::new();
    for &client in &top.clients.clone() {
        let name = top.world.node_name(client).to_owned();
        for (map, n) in top.world.node::<ClientNode>(client).pending_counts() {
            if n > 0 {
                leftovers.push(format!("{name}:{map}={n}"));
            }
        }
    }
    for (i, &ap) in top.aps.clone().iter().enumerate() {
        for (map, n) in top.world.node::<ApNode>(ap).pending_counts() {
            if n > 0 {
                leftovers.push(format!("ap{i}:{map}={n}"));
            }
        }
    }
    let n = top.world.node::<LdnsNode>(top.ldns).pending_count();
    if n > 0 {
        leftovers.push(format!("ldns:pending={n}"));
    }
    leftovers
}

struct ChaosOutcome {
    fingerprint: String,
    scheduled: u64,
    executions: u64,
    roams: u64,
    cancelled: u64,
    leftovers: Vec<String>,
}

fn run_chaos(plan_seed: Option<u64>, key: Option<u64>) -> ChaosOutcome {
    let cfg = config(31, key);
    let mut top = build_topology(&cfg);
    if let Some(plan_seed) = plan_seed {
        let plan = random_plan(&top, plan_seed);
        top.world.set_fault_plan(plan);
    }
    top.world.run_for(RUN + GRACE);
    let fingerprint = top.world.fingerprint().to_string();
    let leftovers = undrained(&mut top);
    let scheduled = top.scheduled as u64;
    let result = collect_topology(cfg.base.system, &mut top);
    ChaosOutcome {
        fingerprint,
        scheduled,
        executions: result.report.executions,
        roams: result.metrics.counter(names::CLIENT_ROAMS),
        cancelled: result.metrics.counter(names::AP_ROAM_CANCELLED_FORWARDS)
            + result.metrics.counter(names::AP_ROAM_CANCELLED_WAITERS),
        leftovers,
    }
}

fn assert_terminated_and_drained(outcome: &ChaosOutcome, label: &str) {
    assert!(outcome.scheduled > 0, "{label}: schedule generated work");
    assert!(outcome.roams > 0, "{label}: clients actually roamed");
    assert_eq!(
        outcome.executions, outcome.scheduled,
        "{label}: every scheduled execution reaches a terminal state"
    );
    assert!(
        outcome.leftovers.is_empty(),
        "{label}: pending state leaked after drain: {}",
        outcome.leftovers.join(", ")
    );
}

#[test]
fn roaming_under_faults_terminates_drained_and_tie_invariant() {
    for plan_seed in [13, 37] {
        let baseline = run_chaos(Some(plan_seed), None);
        assert_terminated_and_drained(&baseline, &format!("plan {plan_seed}"));
        for key in PERTURBATION_KEYS {
            let perturbed = run_chaos(Some(plan_seed), Some(key));
            assert_eq!(
                perturbed.fingerprint, baseline.fingerprint,
                "plan {plan_seed} diverged under tie perturbation {key:#x}"
            );
            assert_eq!(perturbed.executions, baseline.executions);
            assert_eq!(perturbed.roams, baseline.roams);
            assert_eq!(perturbed.cancelled, baseline.cancelled);
        }
    }
}

#[test]
fn roam_departures_are_cancelled_not_reaped() {
    // No fault plan: steady 3% loss plus roaming alone must already
    // exercise the cancel-on-departure path, and the departures must be
    // counted distinctly from timeout reaps.
    let outcome = run_chaos(None, None);
    assert_terminated_and_drained(&outcome, "lossy roaming baseline");
    assert!(
        outcome.cancelled > 0,
        "roams raced in-flight work: departures must cancel state, \
         not leave it to the reaper ({} roams, 0 cancellations)",
        outcome.roams
    );
}
