//! Sketch-histogram property suite: the fixed-memory engine must track the
//! frozen sample-hoarding seed ([`ape_simnet::reference::ExactHistogram`])
//! to within 1% relative quantile error on every distribution shape the
//! testbed produces — and swapping the whole metrics plane to sketch mode
//! must leave the simulation itself bitwise tie-break invariant, exactly
//! like the exact-compat plane (`tests/determinism_perturbation.rs`).
//!
//! The relative-error tolerance uses the same floor as `repro
//! bench-metrics`' untimed accuracy gate: errors are measured against
//! `max(|exact|, 1/1024)` so near-zero quantiles (inside the sketch's
//! exact linear range) are compared absolutely at sub-bucket resolution.

use ape_appdag::DummyAppConfig;
use ape_simnet::reference::ExactHistogram;
use ape_simnet::{Histogram, HistogramMode, MetricsConfig, SimDuration, SimRng, TraceConfig};
use ape_workload::ScheduleConfig;
use apecache::{build, synthetic_suite, System, TestbedConfig};
use proptest::prelude::*;

/// Quantiles every distribution test checks (matches `bench-metrics`).
const CHECK_QUANTILES: [f64; 4] = [0.5, 0.9, 0.99, 0.999];

/// Relative-error budget: the sketch's log buckets are 1/128 wide, so 1%
/// leaves slack for the nearest-rank vs midpoint estimator mismatch.
const REL_TOL: f64 = 0.01 + 1e-9;

/// Records `stream` into both engines and asserts every checked quantile
/// agrees to within [`REL_TOL`]; returns the worst error for reporting.
fn assert_tracks_exact(stream: &[f64], label: &str) -> f64 {
    let mut sketch = Histogram::new_sketch(false);
    let mut exact = ExactHistogram::new();
    for &v in stream {
        sketch.record(v);
        exact.record(v);
    }
    assert_eq!(sketch.count(), exact.count(), "{label}: counts diverged");
    let mut worst = 0.0f64;
    for q in CHECK_QUANTILES {
        let s = sketch.quantile(q);
        let e = exact.quantile(q);
        let rel = (s - e).abs() / e.abs().max(1.0 / 1024.0);
        assert!(
            rel <= REL_TOL,
            "{label}: sketch q={q} was {s}, exact {e} (rel err {rel:.5})"
        );
        worst = worst.max(rel);
    }
    worst
}

/// Uniform randomized stream over a seed-dependent range.
#[test]
fn sketch_tracks_exact_on_randomized_uniform_streams() {
    for seed in 0..8u64 {
        let mut rng = SimRng::seed_from(0x5EED_0001 ^ seed);
        let hi = rng.uniform_f64(1.0, 500.0);
        let stream: Vec<f64> = (0..20_000).map(|_| rng.uniform_f64(0.0, hi)).collect();
        assert_tracks_exact(&stream, &format!("uniform seed {seed}"));
    }
}

/// Heavy-tail exponential: the regime where log buckets earn their keep.
#[test]
fn sketch_tracks_exact_on_heavy_tail_streams() {
    for seed in 0..8u64 {
        let mut rng = SimRng::seed_from(0x5EED_0002 ^ seed);
        let mean = rng.uniform_f64(5.0, 250.0);
        let stream: Vec<f64> = (0..20_000).map(|_| rng.exponential(mean)).collect();
        assert_tracks_exact(&stream, &format!("exponential seed {seed}"));
    }
}

/// Bimodal: sub-millisecond WiFi hits plus a ~15 ms edge mode, the shape
/// the testbed's app-latency histograms actually take.
#[test]
fn sketch_tracks_exact_on_bimodal_streams() {
    for seed in 0..8u64 {
        let mut rng = SimRng::seed_from(0x5EED_0003 ^ seed);
        let stream: Vec<f64> = (0..20_000)
            .map(|_| {
                if rng.chance(0.6) {
                    rng.uniform_f64(0.05, 0.9)
                } else {
                    rng.normal(15.0, 2.5).abs()
                }
            })
            .collect();
        assert_tracks_exact(&stream, &format!("bimodal seed {seed}"));
    }
}

/// Near-zero values land in the linear sub-millisecond range, where the
/// sketch's guarantee is *absolute*: quantiles resolve to the 1/1024
/// bucket grid, so the error budget is one bucket width rather than 1%
/// relative (1% of a 10 µs quantile would demand sub-bucket resolution
/// no fixed-memory layout provides).
#[test]
fn sketch_tracks_exact_on_near_zero_streams() {
    for seed in 0..8u64 {
        let mut rng = SimRng::seed_from(0x5EED_0004 ^ seed);
        let stream: Vec<f64> = (0..20_000).map(|_| rng.uniform_f64(0.0, 0.02)).collect();
        let mut sketch = Histogram::new_sketch(false);
        let mut exact = ExactHistogram::new();
        for &v in &stream {
            sketch.record(v);
            exact.record(v);
        }
        for q in CHECK_QUANTILES {
            let s = sketch.quantile(q);
            let e = exact.quantile(q);
            assert!(
                (s - e).abs() <= 1.0 / 1024.0 + 1e-12,
                "near-zero seed {seed}: sketch q={q} was {s}, exact {e}"
            );
        }
    }
}

/// Merged sketches must equal the sketch of the pooled stream, in either
/// merge order — the order-independence the parallel runner relies on.
#[test]
fn sketch_merge_is_order_independent_and_pools_exactly() {
    let mut rng = SimRng::seed_from(0x5EED_0005);
    let a: Vec<f64> = (0..10_000).map(|_| rng.exponential(40.0)).collect();
    let b: Vec<f64> = (0..10_000).map(|_| rng.normal(15.0, 2.5).abs()).collect();

    let mut pooled = Histogram::new_sketch(false);
    let mut sketch_a = Histogram::new_sketch(false);
    let mut sketch_b = Histogram::new_sketch(false);
    for &v in &a {
        pooled.record(v);
        sketch_a.record(v);
    }
    for &v in &b {
        pooled.record(v);
        sketch_b.record(v);
    }

    let mut ab = sketch_a.clone();
    ab.merge(&sketch_b);
    let mut ba = sketch_b.clone();
    ba.merge(&sketch_a);

    assert_eq!(ab.count(), pooled.count());
    assert_eq!(ba.count(), pooled.count());
    for q in CHECK_QUANTILES {
        let p = pooled.quantile(q);
        assert_eq!(
            ab.quantile(q).to_bits(),
            p.to_bits(),
            "a+b merge diverged from pooled at q={q}"
        );
        assert_eq!(
            ba.quantile(q).to_bits(),
            p.to_bits(),
            "b+a merge diverged from pooled at q={q}"
        );
    }

    // And the merged sketch still tracks the pooled exact oracle.
    let mut exact = ExactHistogram::new();
    for &v in a.iter().chain(b.iter()) {
        exact.record(v);
    }
    for q in CHECK_QUANTILES {
        let s = ab.quantile(q);
        let e = exact.quantile(q);
        let rel = (s - e).abs() / e.abs().max(1.0 / 1024.0);
        assert!(rel <= REL_TOL, "merged sketch q={q}: {s} vs exact {e}");
    }
}

/// A randomized three-regime mixture: per-regime scales and the stream
/// length vary with the case.
#[derive(Debug, Clone)]
struct Mixture {
    seed: u64,
    n: usize,
}

fn arb_mixture() -> impl Strategy<Value = Mixture> {
    (any::<u64>(), 2_000usize..12_000).prop_map(|(seed, n)| Mixture { seed, n })
}

// Arbitrary three-regime mixtures stay inside the error budget: the
// per-regime scales and stream length are all case-randomized.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sketch_tracks_exact_on_random_mixtures(mix in arb_mixture()) {
        let mut rng = SimRng::seed_from(mix.seed);
        let edge_mean = rng.uniform_f64(2.0, 60.0);
        let tail_mean = rng.uniform_f64(20.0, 400.0);
        let stream: Vec<f64> = (0..mix.n)
            .map(|_| match rng.uniform_u64(0, 10) {
                0..=5 => rng.uniform_f64(0.01, 0.9),
                6..=8 => rng.normal(edge_mean, edge_mean / 6.0).abs(),
                _ => rng.exponential(tail_mean),
            })
            .collect();
        let worst = assert_tracks_exact(&stream, "random mixture");
        prop_assert!(worst <= REL_TOL);
    }
}

/// The live oracle mode (sketch + shadow exact, differential-checked on
/// every quantile read) must accept a full heavy-tail stream without
/// tripping its internal assertion.
#[test]
fn sketch_oracle_mode_survives_heavy_tail_stream() {
    let mut registry = ape_simnet::Metrics::new();
    registry.set_config(MetricsConfig {
        histogram_mode: HistogramMode::Sketch,
        sketch_oracle: true,
        ..MetricsConfig::default()
    });
    let mut rng = SimRng::seed_from(0x5EED_0006);
    for _ in 0..20_000 {
        registry.observe("oracle.latency_ms", rng.exponential(80.0));
    }
    // Each quantile read runs the differential check against the shadow.
    for q in CHECK_QUANTILES {
        let v = registry.quantile("oracle.latency_ms", q);
        assert!(v.is_finite() && v > 0.0);
    }
}

// --- Sketch-mode determinism -------------------------------------------

/// Tie-break permutation keys (same set as `determinism_perturbation.rs`).
const PERTURBATION_KEYS: [u64; 4] = [
    0x9E37_79B9_7F4A_7C15,
    0xD1B5_4A32_D192_ED03,
    0xA5A5_A5A5_A5A5_A5A5,
    0x0123_4567_89AB_CDEF,
];

/// Runs the standard determinism testbed with the metrics plane in sketch
/// mode and returns the world fingerprint.
fn sketch_fingerprint(key: Option<u64>) -> String {
    let suite = synthetic_suite(5, &DummyAppConfig::default(), 11);
    let mut cfg = TestbedConfig::new(System::ApeCache, suite);
    cfg.schedule = ScheduleConfig {
        apps: 5,
        avg_per_minute: 3.0,
        zipf_exponent: 0.8,
        duration: SimDuration::from_mins(3),
    };
    cfg.trace = TraceConfig::enabled();
    cfg.metrics = MetricsConfig {
        histogram_mode: HistogramMode::Sketch,
        ..MetricsConfig::default()
    };
    cfg.tie_perturbation = key;
    let mut bed = build(&cfg);
    bed.world.run_for(SimDuration::from_mins(3));
    bed.world.fingerprint().to_string()
}

/// The sketch metrics plane must not reintroduce order sensitivity: the
/// bucket-fold digest has to come out bitwise identical under every
/// tie-break permutation, just like the exact-compat digest does.
#[test]
fn sketch_digest_is_tie_break_invariant() {
    let baseline = sketch_fingerprint(None);
    for key in PERTURBATION_KEYS {
        let fp = sketch_fingerprint(Some(key));
        assert_eq!(
            fp, baseline,
            "sketch-mode fingerprint diverged under tie perturbation {key:#x}"
        );
    }
}
