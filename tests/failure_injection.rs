//! Failure injection: the system must degrade gracefully, not fall over.

use ape_appdag::{AppDag, AppId, AppSpec, DummyAppConfig, ObjectSpec};
use ape_cachealg::Priority;
use ape_httpsim::Url;
use ape_nodes::ApNode;
use ape_proto::names;
use ape_simnet::{LinkSpec, SimDuration};
use ape_workload::ScheduleConfig;
use apecache::{build, collect, synthetic_suite, System, TestbedConfig};

fn config(system: System, apps: usize) -> TestbedConfig {
    let suite = synthetic_suite(apps, &DummyAppConfig::default(), 13);
    let mut config = TestbedConfig::new(system, suite);
    config.schedule = ScheduleConfig {
        apps,
        avg_per_minute: 3.0,
        zipf_exponent: 0.8,
        duration: SimDuration::from_mins(8),
    };
    config
}

#[test]
fn lossy_upstream_dns_triggers_retries_not_collapse() {
    let cfg = config(System::ApeCache, 6);
    let mut bed = build(&cfg);
    bed.world.connect(
        bed.ap,
        bed.ldns,
        LinkSpec::from_rtt(5, SimDuration::from_millis(13)).loss_probability(0.3),
    );
    bed.world.run_for(SimDuration::from_mins(8));
    let result = collect(System::ApeCache, &mut bed);
    // Most executions still complete; retries absorbed the loss.
    assert!(
        result.report.executions as f64 > 0.9 * (8.0 * 6.0 * 3.0) * 0.8,
        "executions {}",
        result.report.executions
    );
    let failure_rate = result.report.failures as f64 / result.report.requests.max(1) as f64;
    assert!(failure_rate < 0.10, "failure rate {failure_rate}");
    assert!(
        result.metrics.counter(names::NET_DROPPED) > 0,
        "loss was injected"
    );
}

#[test]
fn fully_dead_dns_fails_fetches_without_hanging() {
    let cfg = config(System::EdgeCache, 4);
    let mut bed = build(&cfg);
    // Client↔LDNS path drops 95% of packets: most resolutions exhaust
    // their retries.
    for &client in &bed.clients.clone() {
        bed.world.connect(
            client,
            bed.ldns,
            LinkSpec::from_rtt(6, SimDuration::from_millis(16)).loss_probability(0.95),
        );
    }
    bed.world.run_for(SimDuration::from_mins(8));
    let result = collect(System::EdgeCache, &mut bed);
    assert!(
        result.metrics.counter(names::CLIENT_DNS_GIVE_UPS) > 0,
        "give-ups recorded"
    );
    assert!(result.report.failures > 0);
    // The run terminated (we got here) and executions still finish —
    // failed objects cancel their dependents rather than hanging.
    assert!(result.report.executions > 0);
}

#[test]
fn tiny_cache_thrashes_but_stays_correct() {
    let mut cfg = config(System::ApeCache, 10);
    cfg.ap.cache_capacity = 200_000; // 0.2 MB instead of 5 MB
    let mut bed = build(&cfg);
    bed.world.run_for(SimDuration::from_mins(8));
    let ap_bytes = bed.world.node::<ApNode>(bed.ap).cached_bytes();
    assert!(ap_bytes <= 200_000, "capacity respected: {ap_bytes}");
    let result = collect(System::ApeCache, &mut bed);
    assert_eq!(result.report.failures, 0, "thrash is slow, not wrong");
    let hit = result.report.hit_ratio();
    assert!(
        hit < 0.5,
        "tiny cache cannot sustain a high hit ratio: {hit}"
    );
    assert!(
        result.metrics.counter(names::AP_EVICTIONS) > 0,
        "evictions happened"
    );
}

#[test]
fn oversized_objects_are_block_listed_and_served_via_edge_path() {
    // One app whose single object exceeds the 500 KB block threshold.
    let url = Url::parse("http://bigapp.dummy.example/blob").expect("static url");
    let mut b = AppDag::builder();
    b.object(ObjectSpec {
        name: "blob".into(),
        url,
        size: 800_000,
        ttl: SimDuration::from_mins(30),
        remote_latency: SimDuration::from_millis(30),
        priority: Priority::HIGH,
    });
    let app = AppSpec::new(AppId::new(0), "BigApp", b.build().expect("single node"));
    let mut cfg = TestbedConfig::new(System::ApeCache, vec![app]);
    cfg.schedule = ScheduleConfig {
        apps: 1,
        avg_per_minute: 6.0,
        zipf_exponent: 0.8,
        duration: SimDuration::from_mins(5),
    };
    let mut bed = build(&cfg);
    bed.world.run_for(SimDuration::from_mins(5));
    assert_eq!(
        bed.world.node::<ApNode>(bed.ap).cached_objects(),
        0,
        "oversized object never cached"
    );
    let result = collect(System::ApeCache, &mut bed);
    assert!(result.metrics.counter(names::AP_BLOCK_LISTED) >= 1);
    assert_eq!(result.report.failures, 0, "object still delivered");
    assert!(result.report.requests > 10);
    assert_eq!(result.report.hits, 0);
}

#[test]
fn short_ttls_expire_and_refetch() {
    // Objects with 1-minute TTLs over an 8-minute run: every object
    // expires repeatedly and the AP purges + re-delegates.
    let dummy = DummyAppConfig {
        ttl_minutes: (1, 1),
        ..DummyAppConfig::default()
    };
    let suite = synthetic_suite(5, &dummy, 17);
    let mut cfg = TestbedConfig::new(System::ApeCache, suite);
    cfg.schedule = ScheduleConfig {
        apps: 5,
        avg_per_minute: 3.0,
        zipf_exponent: 0.8,
        duration: SimDuration::from_mins(8),
    };
    let mut bed = build(&cfg);
    bed.world.run_for(SimDuration::from_mins(8));
    let result = collect(System::ApeCache, &mut bed);
    assert!(
        result.metrics.counter(names::AP_TTL_PURGES) > 0,
        "expired objects purged"
    );
    // Hit ratio suffers relative to long TTLs but stays positive.
    let hit = result.report.hit_ratio();
    assert!(hit > 0.1 && hit < 0.9, "hit ratio {hit}");
    assert_eq!(result.report.failures, 0);
}
