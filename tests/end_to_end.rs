//! Cross-crate integration tests: full-stack behaviors of the assembled
//! testbed that no single crate can exercise alone.

use ape_appdag::DummyAppConfig;
use ape_nodes::{ApNode, LookupMode, WiCacheControllerNode};
use ape_proto::names;
use ape_simnet::SimDuration;
use ape_workload::ScheduleConfig;
use apecache::{build, collect, run_system, synthetic_suite, System, TestbedConfig};

fn config(system: System, apps: usize, minutes: u64) -> TestbedConfig {
    let suite = synthetic_suite(apps, &DummyAppConfig::default(), 11);
    let mut config = TestbedConfig::new(system, suite);
    config.schedule = ScheduleConfig {
        apps,
        avg_per_minute: 3.0,
        zipf_exponent: 0.8,
        duration: SimDuration::from_mins(minutes),
    };
    config
}

#[test]
fn delegations_populate_the_ap_cache() {
    let cfg = config(System::ApeCache, 5, 5);
    let mut bed = build(&cfg);
    assert_eq!(bed.world.node::<ApNode>(bed.ap).cached_objects(), 0);
    bed.world.run_for(SimDuration::from_mins(5));
    let ap = bed.world.node::<ApNode>(bed.ap);
    assert!(ap.cached_objects() > 10, "cached {}", ap.cached_objects());
    assert!(ap.cached_bytes() > 100_000, "bytes {}", ap.cached_bytes());
    assert!(
        ap.cached_bytes() <= 5_000_000,
        "capacity respected: {}",
        ap.cached_bytes()
    );
    // Delegations and subsequent hits both happened.
    let m = bed.world.metrics();
    assert!(m.counter(names::AP_DELEGATIONS) > 0);
    assert!(m.counter(names::AP_CACHE_HITS) > 0);
    assert!(m.counter(names::AP_DNS_CACHE_QUERIES) > 0);
}

#[test]
fn short_circuit_fires_once_objects_are_cached() {
    let cfg = config(System::ApeCache, 5, 10);
    let mut result = run_system(&cfg, SimDuration::from_mins(10));
    assert!(
        result.metrics.counter(names::AP_SHORT_CIRCUITS) > 0,
        "short-circuit fired"
    );
    // The summary is well-formed.
    let s = result.summary();
    assert!(s.executions > 50);
    assert!((0.0..=1.0).contains(&s.hit_ratio));
}

#[test]
fn wicache_controller_learns_placements() {
    let cfg = config(System::WiCache, 5, 5);
    let mut bed = build(&cfg);
    bed.world.run_for(SimDuration::from_mins(5));
    let controller_id = bed.controller.expect("wicache testbed has a controller");
    let controller = bed.world.node::<WiCacheControllerNode>(controller_id);
    assert!(controller.lookups() > 0, "clients consulted the controller");
    assert!(controller.hits() > 0, "placements resolved lookups");
    assert!(
        controller.placement_count() > 0,
        "AP advertisements registered"
    );
    let result = collect(System::WiCache, &mut bed);
    assert!(
        result.report.hit_ratio() > 0.3,
        "hit ratio {}",
        result.report.hit_ratio()
    );
}

#[test]
fn edge_cache_never_touches_the_ap_cache() {
    let cfg = config(System::EdgeCache, 5, 5);
    let mut bed = build(&cfg);
    bed.world.run_for(SimDuration::from_mins(5));
    assert_eq!(bed.world.node::<ApNode>(bed.ap).cached_objects(), 0);
    let result = collect(System::EdgeCache, &mut bed);
    assert_eq!(result.report.hits, 0);
    assert!(result.report.requests > 100);
    assert_eq!(result.report.failures, 0);
}

#[test]
fn standalone_lookup_mode_is_slower_than_piggybacked() {
    let mut piggy_cfg = config(System::ApeCache, 5, 8);
    piggy_cfg.lookup_mode = LookupMode::Piggybacked;
    let mut standalone_cfg = config(System::ApeCache, 5, 8);
    standalone_cfg.lookup_mode = LookupMode::Standalone;

    let mut piggy = run_system(&piggy_cfg, SimDuration::from_mins(8));
    let mut standalone = run_system(&standalone_cfg, SimDuration::from_mins(8));
    let p = piggy.summary();
    let s = standalone.summary();
    assert!(
        s.lookup_ms > p.lookup_ms + 2.0,
        "standalone {:.2} vs piggybacked {:.2}",
        s.lookup_ms,
        p.lookup_ms
    );
    // Both still function correctly.
    assert_eq!(s.failures, 0);
    assert!(s.hit_ratio > 0.3);
}

#[test]
fn identical_configs_produce_identical_runs() {
    let run = |seed: u64| {
        let mut cfg = config(System::ApeCache, 8, 5);
        cfg.seed = seed;
        let mut result = run_system(&cfg, SimDuration::from_mins(5));
        let s = result.summary();
        (
            s.executions,
            s.hit_ratio.to_bits(),
            s.app_latency_ms.to_bits(),
            s.lookup_ms.to_bits(),
            result.metrics.counter(names::NET_MESSAGES),
        )
    };
    assert_eq!(run(1), run(1), "same seed, same world");
    assert_ne!(run(1), run(2), "different seed, different world");
}

#[test]
fn cold_edge_warms_through_origin() {
    let mut cfg = config(System::EdgeCache, 4, 5);
    cfg.prewarm_edge = false;
    let result = run_system(&cfg, SimDuration::from_mins(5));
    assert!(
        result.metrics.counter(names::EDGE_ORIGIN_FETCHES) > 0,
        "cold edge filled from origin"
    );
    assert_eq!(result.report.failures, 0);
}

#[test]
fn ap_resources_are_sampled_and_bounded() {
    let cfg = config(System::ApeCache, 10, 5);
    let result = run_system(&cfg, SimDuration::from_mins(5));
    let cpu = result.metrics.time_series(names::AP_CPU).expect("sampled");
    assert!(cpu.len() >= 290, "samples {}", cpu.len());
    assert!(cpu.points().iter().all(|(_, v)| (0.0..=1.0).contains(v)));
    let mem = result
        .metrics
        .time_series(names::AP_APE_MEM_MB)
        .expect("sampled");
    assert!(mem.max() < 15.0, "ape memory {:.1} MB", mem.max());
}

#[test]
fn per_app_latencies_cover_every_app() {
    let cfg = config(System::ApeCache, 6, 8);
    let mut result = run_system(&cfg, SimDuration::from_mins(8));
    let s = result.summary();
    assert_eq!(
        s.per_app_latency_ms.len(),
        6,
        "{:?}",
        s.per_app_latency_ms.keys()
    );
    for (name, (avg, p95)) in &s.per_app_latency_ms {
        assert!(*avg > 0.0, "{name} avg");
        // Nearest-rank p95 can dip just below a heavily right-skewed mean,
        // but never collapse relative to it.
        assert!(*p95 > avg * 0.8, "{name} p95 {p95} vs avg {avg}");
    }
}

#[test]
fn prefetch_extension_raises_hit_ratio() {
    // Extension (paper §VI): shipping request-dependency information to
    // the AP should convert would-be delegations into hits.
    let base = config(System::ApeCache, 10, 8);
    let mut with_prefetch = base.clone();
    with_prefetch.prefetch_hints = true;

    let mut plain = run_system(&base, SimDuration::from_mins(8));
    let mut prefetched = run_system(&with_prefetch, SimDuration::from_mins(8));
    let p = plain.summary();
    let q = prefetched.summary();
    assert!(
        prefetched.metrics.counter(names::AP_PREFETCHES) > 0,
        "prefetches happened"
    );
    assert!(
        q.hit_ratio >= p.hit_ratio,
        "prefetching must not hurt: {:.3} vs {:.3}",
        q.hit_ratio,
        p.hit_ratio
    );
    assert!(
        q.app_latency_ms <= p.app_latency_ms * 1.02,
        "latency with prefetch {:.1} vs without {:.1}",
        q.app_latency_ms,
        p.app_latency_ms
    );
    assert_eq!(q.failures, 0);
}
