//! Schedule-perturbation determinism: the default testbed must produce
//! bitwise-identical results no matter how same-timestamp event ties are
//! broken.
//!
//! The event queue orders ties by an insertion sequence number;
//! [`World::set_tie_perturbation`](ape_simnet::World::set_tie_perturbation)
//! scrambles those sequence numbers through a keyed bijection, yielding a
//! different (but still deterministic) tie-break permutation per key. If any
//! node's behavior depended on FIFO tie order — an ordering race the static
//! `ape-lint` pass cannot see — some perturbed run would diverge from the
//! baseline in its `Summary` or trace digest. The synthetic-failure side of
//! this check (a deliberately order-sensitive node that *does* diverge)
//! lives next to the detector in `ape-simnet`'s world tests.

use ape_appdag::DummyAppConfig;
use ape_simnet::{SimDuration, TraceConfig};
use ape_workload::ScheduleConfig;
use apecache::{build, collect, synthetic_suite, Summary, System, TestbedConfig};

/// Tie-break permutation keys to try on top of the unperturbed baseline.
const PERTURBATION_KEYS: [u64; 4] = [
    0x9E37_79B9_7F4A_7C15,
    0xD1B5_4A32_D192_ED03,
    0xA5A5_A5A5_A5A5_A5A5,
    0x0123_4567_89AB_CDEF,
];

fn config(system: System) -> TestbedConfig {
    let suite = synthetic_suite(5, &DummyAppConfig::default(), 11);
    let mut cfg = TestbedConfig::new(system, suite);
    cfg.schedule = ScheduleConfig {
        apps: 5,
        avg_per_minute: 3.0,
        zipf_exponent: 0.8,
        duration: SimDuration::from_mins(3),
    };
    cfg.trace = TraceConfig::enabled();
    cfg
}

/// Runs the testbed with an optional tie-perturbation key and returns the
/// world fingerprint (clock, event count, metrics digest, trace digest)
/// plus the summary flattened to exact bit patterns.
fn run_with(system: System, key: Option<u64>) -> (String, Vec<u64>) {
    let mut cfg = config(system);
    cfg.tie_perturbation = key;
    let mut bed = build(&cfg);
    assert_eq!(
        bed.world.tie_perturbation(),
        key,
        "config must plumb the key"
    );
    bed.world.run_for(SimDuration::from_mins(3));
    let fingerprint = bed.world.fingerprint().to_string();
    let mut result = collect(cfg.system, &mut bed);
    (fingerprint, summary_bits(&result.summary()))
}

/// Flattens every float to its bit pattern so equality is exact, not
/// epsilon-based (mirrors the runner's own bitwise-determinism pin).
fn summary_bits(s: &Summary) -> Vec<u64> {
    let mut bits = vec![
        s.lookup_ms.to_bits(),
        s.retrieval_ms.to_bits(),
        s.retrieval_hit_ms.to_bits(),
        s.retrieval_edge_ms.to_bits(),
        s.object_level_ms.to_bits(),
        s.app_latency_ms.to_bits(),
        s.app_latency_p50_ms.to_bits(),
        s.app_latency_p95_ms.to_bits(),
        s.app_latency_p99_ms.to_bits(),
        s.hit_ratio.to_bits(),
        s.high_priority_hit_ratio.to_bits(),
        s.executions,
        s.failures,
        s.ap_cpu_mean.to_bits(),
        s.ap_cpu_max.to_bits(),
        s.ape_mem_mb_max.to_bits(),
    ];
    for (name, (mean, p95)) in &s.per_app_latency_ms {
        bits.push(name.len() as u64);
        bits.push(mean.to_bits());
        bits.push(p95.to_bits());
    }
    if let Some(a) = &s.attribution {
        bits.push(a.traces);
        bits.push(a.completed);
        for (stage, stat) in &a.stages {
            bits.push(stage.len() as u64);
            bits.push(stat.count);
            bits.push(stat.total_ms.to_bits());
            bits.push(stat.mean_ms.to_bits());
            bits.push(stat.p50_ms.to_bits());
            bits.push(stat.p95_ms.to_bits());
            bits.push(stat.p99_ms.to_bits());
        }
    }
    bits
}

#[test]
fn ape_cache_testbed_is_tie_break_invariant() {
    let (baseline_fp, baseline_bits) = run_with(System::ApeCache, None);
    for key in PERTURBATION_KEYS {
        let (fp, bits) = run_with(System::ApeCache, Some(key));
        assert_eq!(
            fp, baseline_fp,
            "fingerprint diverged under tie perturbation {key:#x}"
        );
        assert_eq!(
            bits, baseline_bits,
            "summary diverged under tie perturbation {key:#x}"
        );
    }
}

#[test]
fn baseline_systems_are_tie_break_invariant() {
    // The comparison baselines drive the same scheduler and links, so an
    // ordering race there would silently skew every headline comparison.
    for system in [System::EdgeCache, System::WiCache] {
        let (baseline_fp, baseline_bits) = run_with(system, None);
        for key in PERTURBATION_KEYS.iter().take(2) {
            let (fp, bits) = run_with(system, Some(*key));
            assert_eq!(fp, baseline_fp, "{system:?} diverged under {key:#x}");
            assert_eq!(bits, baseline_bits, "{system:?} summary diverged");
        }
    }
}

#[test]
fn perturbed_runs_replay_exactly_under_the_same_key() {
    // A perturbed schedule is still a deterministic schedule: same key,
    // same bits. This is what makes a divergence report actionable — the
    // failing interleaving can be replayed at will.
    let key = Some(PERTURBATION_KEYS[0]);
    assert_eq!(
        run_with(System::ApeCache, key),
        run_with(System::ApeCache, key)
    );
}
