//! Umbrella crate for the APE-CACHE reproduction workspace.
//!
//! This root package hosts the runnable [examples](https://github.com/apecache/apecache/tree/main/examples)
//! and the cross-crate integration tests; the library surface simply
//! re-exports the workspace crates so examples and tests can use one import.

pub use ape_appdag as appdag;
pub use ape_cachealg as cachealg;
pub use ape_dnswire as dnswire;
pub use ape_httpsim as httpsim;
pub use ape_nodes as nodes;
pub use ape_proto as proto;
pub use ape_simnet as simnet;
pub use ape_workload as workload;
pub use apecache as core;
